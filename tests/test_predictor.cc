/// Tests of the serving runtime (src/serve/predictor.h): the schema
/// guard, thread/shard invariance of PredictSharded, latency stats, and
/// the central serving property — for every (preprocessor, model) pair,
/// predictions served from an artifact are bit-identical to the
/// in-process fit_transform -> train -> predict they were exported from.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmark_suite.h"
#include "serve/predictor.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset TestData() {
  Result<Dataset> data = GetSuiteDataset("blood_syn");
  AUTOFP_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// Exports an artifact for (spec, model) fitted on `data` and loads it
/// back into a predictor.
std::unique_ptr<Predictor> MakePredictor(const Dataset& data,
                                         const PipelineSpec& spec,
                                         ModelKind kind,
                                         const std::string& name,
                                         int num_threads = 1) {
  std::string path = TempPath(name);
  Result<ArtifactSchema> exported =
      ExportArtifact(path, data, spec, ModelConfig::Defaults(kind));
  EXPECT_TRUE(exported.ok()) << exported.status().ToString();
  Predictor::Options options;
  options.num_threads = num_threads;
  Predictor::LoadResult loaded = Predictor::Load(path, options);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return loaded.TakePredictor();
}

/// The in-process reference the artifact must reproduce exactly:
/// ExportArtifact's own fit/train recipe.
std::vector<int> InProcessPredictions(const Dataset& data,
                                      const PipelineSpec& spec,
                                      ModelKind kind) {
  FittedPipeline pipeline = FittedPipeline::Fit(spec, data.features);
  Matrix transformed = pipeline.Transform(data.features);
  std::unique_ptr<Classifier> model =
      MakeClassifier(ModelConfig::Defaults(kind));
  model->Train(transformed, data.labels, data.num_classes);
  return model->PredictBatch(transformed);
}

TEST(Predictor, SchemaGuardRejectsWrongColumnCount) {
  Dataset data = TestData();
  std::unique_ptr<Predictor> predictor = MakePredictor(
      data, PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler}),
      ModelKind::kLogisticRegression, "predictor_guard.afpa");
  Matrix wrong(3, data.num_cols() + 2);
  Result<std::vector<int>> predictions = predictor->Predict(wrong);
  ASSERT_FALSE(predictions.ok());
  EXPECT_EQ(predictions.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(predictions.status().message().find("columns"),
            std::string::npos)
      << predictions.status().ToString();
  // The sharded path guards identically.
  EXPECT_FALSE(predictor->PredictSharded(wrong, 2).ok());
  // Nothing reached the histogram.
  EXPECT_EQ(predictor->stats().batches, 0);
}

TEST(Predictor, EmptyBatch) {
  Dataset data = TestData();
  std::unique_ptr<Predictor> predictor = MakePredictor(
      data, PipelineSpec::FromKinds({PreprocessorKind::kMinMaxScaler}),
      ModelKind::kLogisticRegression, "predictor_empty.afpa");
  Matrix empty(0, data.num_cols());
  Result<std::vector<int>> predictions = predictor->Predict(empty);
  ASSERT_TRUE(predictions.ok());
  EXPECT_TRUE(predictions.value().empty());
}

TEST(Predictor, ServedMatchesInProcessForAllPairs) {
  // The round-trip property at the heart of the artifact format: for all
  // 7 preprocessors x 3 models, scoring through an exported artifact is
  // bit-identical to never having left the process.
  Dataset data = TestData();
  for (PreprocessorKind preprocessor : AllPreprocessorKinds()) {
    PipelineSpec spec = PipelineSpec::FromKinds({preprocessor});
    for (ModelKind model :
         {ModelKind::kLogisticRegression, ModelKind::kXgboost,
          ModelKind::kMlp}) {
      const std::string label =
          KindName(preprocessor) + "+" + ModelKindName(model);
      std::unique_ptr<Predictor> predictor = MakePredictor(
          data, spec, model, "predictor_pair_" + label + ".afpa");
      Result<std::vector<int>> served = predictor->Predict(data.features);
      ASSERT_TRUE(served.ok()) << label;
      EXPECT_EQ(served.value(), InProcessPredictions(data, spec, model))
          << label;
    }
  }
}

TEST(Predictor, ShardedMatchesUnshardedAcrossThreadsAndBatches) {
  Dataset data = TestData();
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer, PreprocessorKind::kMinMaxScaler});
  std::vector<int> reference;
  for (int threads : {1, 2, 4}) {
    std::unique_ptr<Predictor> predictor = MakePredictor(
        data, spec, ModelKind::kXgboost,
        "predictor_shard_" + std::to_string(threads) + ".afpa", threads);
    EXPECT_EQ(predictor->num_threads(), threads);
    if (reference.empty()) {
      Result<std::vector<int>> unsharded = predictor->Predict(data.features);
      ASSERT_TRUE(unsharded.ok());
      reference = unsharded.value();
    }
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{100000}}) {
      Result<std::vector<int>> sharded =
          predictor->PredictSharded(data.features, batch);
      ASSERT_TRUE(sharded.ok());
      EXPECT_EQ(sharded.value(), reference)
          << threads << " threads, batch " << batch;
    }
  }
}

TEST(Predictor, ConcurrentCallersShareOnePredictor) {
  // The predictor is immutable after load; many caller threads scoring
  // concurrently (each through the sharded path) must all agree.
  Dataset data = TestData();
  std::unique_ptr<Predictor> predictor = MakePredictor(
      data, PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler}),
      ModelKind::kMlp, "predictor_concurrent.afpa", /*num_threads=*/3);
  Result<std::vector<int>> reference = predictor->Predict(data.features);
  ASSERT_TRUE(reference.ok());
  std::vector<std::thread> callers;
  std::vector<int> mismatches(4, 0);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int repeat = 0; repeat < 8; ++repeat) {
        Result<std::vector<int>> predictions =
            predictor->PredictSharded(data.features, 32);
        if (!predictions.ok() || predictions.value() != reference.value()) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(mismatches, std::vector<int>(4, 0));
}

TEST(Predictor, StatsCountEveryScoredBatch) {
  Dataset data = TestData();
  std::unique_ptr<Predictor> predictor = MakePredictor(
      data, PipelineSpec::FromKinds({PreprocessorKind::kMaxAbsScaler}),
      ModelKind::kLogisticRegression, "predictor_stats.afpa",
      /*num_threads=*/2);
  ASSERT_TRUE(predictor->Predict(data.features).ok());
  ASSERT_TRUE(predictor->PredictSharded(data.features, 100).ok());
  ServeStats stats = predictor->stats();
  // One unsharded batch plus ceil(rows/100) shards.
  const long expected_batches =
      1 + static_cast<long>((data.num_rows() + 99) / 100);
  EXPECT_EQ(stats.batches, expected_batches);
  EXPECT_EQ(stats.rows, static_cast<long>(2 * data.num_rows()));
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GT(stats.rows_per_second, 0.0);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
}

}  // namespace
}  // namespace autofp
