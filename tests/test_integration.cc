/// End-to-end integration tests: the full Auto-FP flow (dataset -> split ->
/// evaluator -> search -> pipeline) across models, spaces and data paths.

#include <cstdio>

#include <gtest/gtest.h>

#include "automl/tpot_fp.h"
#include "core/auto_fp.h"
#include "search/registry.h"
#include "search/two_step.h"
#include "util/csv.h"

namespace autofp {
namespace {

Dataset ScaleSensitive(uint64_t seed, size_t rows = 300) {
  SyntheticSpec spec;
  spec.name = "integ";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = rows;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = seed;
  spec.separation = 2.5;
  return GenerateSynthetic(spec);
}

class EndToEnd : public ::testing::TestWithParam<ModelKind> {};

TEST_P(EndToEnd, SearchImprovesScaleSensitiveModels) {
  Dataset data = ScaleSensitive(31);
  Rng rng(31);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(GetParam());
  model.lr_epochs = 30;
  model.xgb_rounds = 15;
  model.mlp_epochs = 10;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  auto tevo = MakeSearchAlgorithm("TEVO_H").value();
  SearchResult result = RunSearch(tevo.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(60), 31});
  // Scaling-sensitive models (LR, MLP) must gain clearly; trees must at
  // least not lose.
  if (GetParam() == ModelKind::kXgboost) {
    EXPECT_GE(result.best_accuracy, result.baseline_accuracy - 0.01);
  } else {
    EXPECT_GT(result.best_accuracy, result.baseline_accuracy + 0.03)
        << ModelKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Models, EndToEnd,
                         ::testing::Values(ModelKind::kLogisticRegression,
                                           ModelKind::kXgboost,
                                           ModelKind::kMlp),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return ModelKindName(info.param);
                         });

TEST(EndToEndFlow, CsvRoundTripSearch) {
  // Write -> load -> search, the external-data path.
  Dataset data = ScaleSensitive(32, 200);
  std::string path = ::testing::TempDir() + "/autofp_integration.csv";
  Matrix table(data.num_rows(), data.num_cols() + 1);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t c = 0; c < data.num_cols(); ++c) {
      table(r, c) = data.features(r, c);
    }
    table(r, data.num_cols()) = data.labels[r];
  }
  ASSERT_TRUE(WriteCsv(path, {}, table).ok());
  Result<Dataset> loaded = LoadCsvDataset(path, /*has_header=*/false, "rt");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), data.num_rows());
  EXPECT_EQ(loaded.value().num_classes, 2);

  Rng rng(32);
  TrainValidSplit split = SplitTrainValid(loaded.value(), 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 25;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  auto rs = MakeSearchAlgorithm("RS").value();
  SearchResult result = RunSearch(rs.get(), &evaluator, SearchSpace::Default(4), {Budget::Evaluations(30), 32});
  EXPECT_EQ(result.num_evaluations, 30);
  std::remove(path.c_str());
}

TEST(EndToEndFlow, BestPipelineReproducesReportedAccuracy) {
  // The contract users depend on: re-running the returned pipeline on the
  // same evaluator setup gives exactly the reported accuracy.
  Dataset data = ScaleSensitive(33);
  Rng rng(33);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 25;
  PipelineEvaluator search_eval(split.train, split.valid, model);
  auto pbt = MakeSearchAlgorithm("PBT").value();
  SearchResult result = RunSearch(pbt.get(), &search_eval, SearchSpace::Default(), {Budget::Evaluations(40), 33});
  PipelineEvaluator check_eval(split.train, split.valid, model);
  EvalRequest rescore;
  rescore.pipeline = result.best_pipeline;
  EXPECT_DOUBLE_EQ(check_eval.Evaluate(rescore).accuracy,
                   result.best_accuracy);
}

TEST(EndToEndFlow, AllAlgorithmsShareTheSameEvaluationSemantics) {
  // Any two algorithms evaluating the same pipeline through their contexts
  // must observe the same accuracy (the evaluator is deterministic).
  Dataset data = ScaleSensitive(34);
  Rng rng(34);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 25;
  EvalRequest probe;
  probe.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler,
                               PreprocessorKind::kMinMaxScaler});
  PipelineEvaluator eval_a(split.train, split.valid, model);
  PipelineEvaluator eval_b(split.train, split.valid, model);
  EXPECT_DOUBLE_EQ(eval_a.Evaluate(probe).accuracy,
                   eval_b.Evaluate(probe).accuracy);
}

TEST(EndToEndFlow, TwoStepAndOneStepSearchTheSameParameterUniverse) {
  Dataset data = ScaleSensitive(35);
  Rng rng(35);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 20;
  ParameterSpace parameters = ParameterSpace::LowCardinality();
  PipelineEvaluator one_eval(split.train, split.valid, model);
  SearchResult one = RunOneStep("RS", &one_eval, parameters, {Budget::Evaluations(25), 35}, 4);
  TwoStepConfig config;
  config.algorithm = "RS";
  config.inner_budget = Budget::Evaluations(10);
  config.max_pipeline_length = 4;
  PipelineEvaluator two_eval(split.train, split.valid, model);
  SearchResult two = RunTwoStep(config, &two_eval, parameters, {Budget::Evaluations(25), 35});
  // Both produce valid pipelines whose steps obey the Table 6 values.
  SearchSpace flattened = OneStepSpace(parameters, 4);
  for (const SearchResult* result : {&one, &two}) {
    for (const PreprocessorConfig& step : result->best_pipeline.steps) {
      bool found = false;
      for (const PreprocessorConfig& op : flattened.operators()) {
        if (op == step) found = true;
      }
      EXPECT_TRUE(found) << step.ToString();
    }
  }
}

TEST(EndToEndFlow, TpotFpRestrictedSpaceIsSubsetOfAutoFp) {
  SearchSpace tpot = TpotFpSpace();
  SearchSpace full = SearchSpace::Default();
  for (const PreprocessorConfig& op : tpot.operators()) {
    bool found = false;
    for (const PreprocessorConfig& full_op : full.operators()) {
      if (full_op == op) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_LT(tpot.TotalPipelines(), full.TotalPipelines());
}

TEST(EndToEndFlow, SuiteScenarioIsFullyDeterministic) {
  // The exact scenario benches run: suite dataset + capped rows + split +
  // search. Two complete executions must agree bit-for-bit.
  auto run_once = [] {
    Dataset data = GetSuiteDataset("vehicle_syn").value();
    Rng rng(5);
    Dataset capped = SubsampleRows(data, 400.0 / data.num_rows(), &rng);
    TrainValidSplit split = SplitTrainValid(capped, 0.8, &rng);
    ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
    model.lr_epochs = 20;
    PipelineEvaluator evaluator(split.train, split.valid, model);
    auto algorithm = MakeSearchAlgorithm("PBT").value();
    return RunSearch(algorithm.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(30), 77});
  };
  SearchResult a = run_once();
  SearchResult b = run_once();
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy);
  EXPECT_DOUBLE_EQ(a.baseline_accuracy, b.baseline_accuracy);
  EXPECT_TRUE(a.best_pipeline == b.best_pipeline);
}

}  // namespace
}  // namespace autofp
