/// Deterministic end-to-end tests of the drift -> background re-search ->
/// hot-swap loop (src/stream/controller.h). The search body is rigged via
/// BackgroundResearcher::set_search_export_fn so each path is exact: a
/// successful run must bump the registry generation, a failed run (error
/// status OR a corrupt candidate artifact) must leave the old generation
/// serving untouched, and a swap must rebuild the drift baseline around
/// the new artifact's own reference stats.

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmark_suite.h"
#include "serve/artifact.h"
#include "serve/registry.h"
#include "stream/controller.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset TestData() {
  Result<Dataset> data = GetSuiteDataset("blood_syn");
  AUTOFP_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

/// Exports a real artifact for `spec` fitted on blood_syn.
std::string WriteTestArtifact(const std::string& name,
                              const PipelineSpec& spec) {
  std::string path = TempPath(name);
  Result<ArtifactSchema> exported = ExportArtifact(
      path, TestData(), spec,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  EXPECT_TRUE(exported.ok()) << exported.status().ToString();
  return path;
}

PipelineSpec BaselineSpec() {
  return PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
}

PipelineSpec AlternateSpec() {
  return PipelineSpec::FromKinds(
      {PreprocessorKind::kMinMaxScaler, PreprocessorKind::kStandardScaler});
}

/// A StreamConfig tuned so one small drifted batch crosses a window
/// boundary and clears the snapshot-size floor.
StreamConfig SmallStreamConfig(const std::string& candidate_path) {
  StreamConfig config;
  config.drift.window_rows = 64;
  config.drift.threshold = 0.5;
  config.drift.min_columns = 1;
  config.reservoir_rows = 256;
  config.seed = 7;
  config.research.candidate_path = candidate_path;
  config.research.min_rows = 32;
  config.research.budget_evaluations = 8;
  return config;
}

/// `rows` rows of blood_syn features shifted far out of distribution, plus
/// matching fake predictions (the pseudo-labels the controller records).
struct DriftedBatch {
  Matrix rows;
  std::vector<int> predictions;
};

DriftedBatch MakeDriftedBatch(size_t rows, double shift) {
  const Dataset data = TestData();
  AUTOFP_CHECK(rows <= data.num_rows());
  DriftedBatch batch;
  batch.rows = Matrix(rows, data.num_cols());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < data.num_cols(); ++c) {
      batch.rows(r, c) = data.features(r, c) + shift;
    }
  }
  batch.predictions.assign(rows, 0);
  for (size_t r = 0; r < rows; r += 2) batch.predictions[r] = 1;
  return batch;
}

TEST(StreamSwap, DriftTriggersResearchAndHotSwap) {
  const std::string baseline = WriteTestArtifact("swap_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());
  ASSERT_EQ(registry.Info().generation, 1);

  const std::string candidate = TempPath("swap_candidate.afpa");
  StreamController controller(&registry, SmallStreamConfig(candidate));

  // Rig the search body: "re-search" instantly finds the alternate
  // pipeline and exports a real artifact for it.
  int rigged_calls = 0;
  controller.researcher().set_search_export_fn(
      [&rigged_calls](const Dataset& snapshot, const std::string& path) {
        ++rigged_calls;
        EXPECT_GE(snapshot.num_rows(), 32u);
        EXPECT_TRUE(snapshot.Validate().ok());
        Result<ArtifactSchema> exported = ExportArtifact(
            path, snapshot, AlternateSpec(),
            ModelConfig::Defaults(ModelKind::kLogisticRegression));
        return exported.status();
      });

  // One full drifted window through the observer hook.
  DriftedBatch batch = MakeDriftedBatch(64, /*shift=*/500.0);
  std::shared_ptr<const Predictor> live = registry.Acquire();
  ASSERT_NE(live, nullptr);
  controller.OnBatchScored(batch.rows, batch.predictions, *live);
  controller.WaitForResearch();

  EXPECT_EQ(rigged_calls, 1);
  EXPECT_EQ(registry.Info().generation, 2);
  EXPECT_EQ(registry.Info().path, candidate);
  EXPECT_EQ(registry.Info().pipeline, AlternateSpec().ToString());

  StreamCounters counters = controller.counters();
  EXPECT_EQ(counters.rows_observed, 64);
  EXPECT_EQ(counters.windows_compared, 1);
  EXPECT_EQ(counters.drift_triggers, 1);
  EXPECT_EQ(counters.research_started, 1);
  EXPECT_EQ(counters.research_succeeded, 1);
  EXPECT_EQ(counters.research_failed, 0);
  EXPECT_EQ(counters.baseline_resets, 0);

  // The next batch arrives under the NEW predictor: the controller must
  // notice the identity change and rebuild the baseline around the new
  // artifact's reference stats (counted as a reset).
  std::shared_ptr<const Predictor> swapped = registry.Acquire();
  ASSERT_NE(swapped.get(), live.get());
  DriftedBatch next = MakeDriftedBatch(16, /*shift=*/0.0);
  controller.OnBatchScored(next.rows, next.predictions, *swapped);
  EXPECT_EQ(controller.counters().baseline_resets, 1);
  EXPECT_EQ(controller.counters().rows_observed, 80);
}

TEST(StreamSwap, FailedSearchKeepsOldGenerationServing) {
  const std::string baseline = WriteTestArtifact("fail_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());

  StreamController controller(
      &registry, SmallStreamConfig(TempPath("fail_candidate.afpa")));
  controller.researcher().set_search_export_fn(
      [](const Dataset&, const std::string&) {
        return Status::Internal("rigged search failure");
      });

  DriftedBatch batch = MakeDriftedBatch(64, /*shift=*/500.0);
  std::shared_ptr<const Predictor> live = registry.Acquire();
  controller.OnBatchScored(batch.rows, batch.predictions, *live);
  controller.WaitForResearch();

  // Old generation keeps serving: same generation, same live predictor.
  EXPECT_EQ(registry.Info().generation, 1);
  EXPECT_EQ(registry.Acquire().get(), live.get());
  StreamCounters counters = controller.counters();
  EXPECT_EQ(counters.drift_triggers, 1);
  EXPECT_EQ(counters.research_failed, 1);
  EXPECT_EQ(counters.research_succeeded, 0);
}

TEST(StreamSwap, CorruptCandidateIsRejectedBySwap) {
  const std::string baseline = WriteTestArtifact("corrupt_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());

  const std::string candidate = TempPath("corrupt_candidate.afpa");
  StreamController controller(&registry, SmallStreamConfig(candidate));
  // The rigged "search" claims success but leaves garbage bytes behind —
  // the swap's corruption taxonomy must reject it.
  controller.researcher().set_search_export_fn(
      [](const Dataset&, const std::string& path) {
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file << "not an artifact";
        return Status::OK();
      });

  DriftedBatch batch = MakeDriftedBatch(64, /*shift=*/500.0);
  std::shared_ptr<const Predictor> live = registry.Acquire();
  controller.OnBatchScored(batch.rows, batch.predictions, *live);
  controller.WaitForResearch();

  EXPECT_EQ(registry.Info().generation, 1);
  EXPECT_EQ(registry.Acquire().get(), live.get());
  EXPECT_EQ(registry.Info().pipeline, BaselineSpec().ToString());
  EXPECT_EQ(controller.counters().research_failed, 1);
}

TEST(StreamSwap, InDistributionTrafficNeverTriggers) {
  const std::string baseline = WriteTestArtifact("quiet_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());

  StreamController controller(
      &registry, SmallStreamConfig(TempPath("quiet_candidate.afpa")));
  controller.researcher().set_search_export_fn(
      [](const Dataset&, const std::string&) {
        ADD_FAILURE() << "research must not run without drift";
        return Status::Internal("unexpected");
      });

  // Unshifted rows are exactly the export distribution; two full windows
  // delivered as serving-sized micro-batches.
  DriftedBatch batch = MakeDriftedBatch(64, /*shift=*/0.0);
  std::shared_ptr<const Predictor> live = registry.Acquire();
  controller.OnBatchScored(batch.rows, batch.predictions, *live);
  controller.OnBatchScored(batch.rows, batch.predictions, *live);
  controller.WaitForResearch();

  StreamCounters counters = controller.counters();
  EXPECT_EQ(counters.windows_compared, 2);
  EXPECT_EQ(counters.drift_triggers, 0);
  EXPECT_EQ(counters.research_started, 0);
  EXPECT_EQ(registry.Info().generation, 1);
}

TEST(StreamSwap, ResearcherRefusesTinySnapshots) {
  const std::string baseline = WriteTestArtifact("tiny_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());

  ResearchConfig config;
  config.candidate_path = TempPath("tiny_candidate.afpa");
  config.min_rows = 64;
  BackgroundResearcher researcher(&registry, config);

  Dataset tiny = TestData();
  tiny.features = Matrix(8, tiny.num_cols());
  tiny.labels.assign(8, 0);
  Status status = researcher.RunOnce(tiny);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(registry.Info().generation, 1);
}

TEST(StreamSwap, DefaultSearchBodyProducesServableArtifact) {
  // No rigging: the real RunSearch/ExportArtifact body on a real snapshot
  // must produce a candidate the registry accepts.
  const std::string baseline = WriteTestArtifact("real_base.afpa",
                                                 BaselineSpec());
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(baseline).ok());

  ResearchConfig config;
  config.candidate_path = TempPath("real_candidate.afpa");
  config.budget_evaluations = 6;
  config.min_rows = 32;
  config.seed = 3;
  BackgroundResearcher researcher(&registry, config);

  Status status = researcher.RunOnce(TestData());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(registry.Info().generation, 2);
  std::shared_ptr<const Predictor> swapped = registry.Acquire();
  ASSERT_NE(swapped, nullptr);
  // The re-exported artifact carries fresh reference stats for the next
  // drift baseline.
  EXPECT_FALSE(swapped->reference_stats().empty());
}

}  // namespace
}  // namespace autofp
