#include "ml/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace autofp {
namespace {

Dataset SmallBlobs(int classes, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "gbdt";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 300;
  spec.cols = 5;
  spec.num_classes = classes;
  spec.seed = seed;
  spec.separation = 3.0;
  spec.label_noise = 0.0;
  return GenerateSynthetic(spec);
}

ModelConfig GbdtConfig() {
  ModelConfig config = ModelConfig::Defaults(ModelKind::kXgboost);
  config.xgb_rounds = 20;
  return config;
}

TEST(GbdtDetails, RawScoresLengthMatchesOutputs) {
  Dataset binary = SmallBlobs(2, 1);
  GbdtClassifier model(GbdtConfig());
  model.Train(binary.features, binary.labels, 2);
  std::vector<double> scores =
      model.RawScores(binary.features.RowPtr(0), binary.num_cols());
  EXPECT_EQ(scores.size(), 1u);  // single sigmoid logit for binary.

  Dataset multi = SmallBlobs(4, 2);
  GbdtClassifier multi_model(GbdtConfig());
  multi_model.Train(multi.features, multi.labels, 4);
  EXPECT_EQ(multi_model.RawScores(multi.features.RowPtr(0), 5).size(), 4u);
}

TEST(GbdtDetails, PredictionConsistentWithRawScores) {
  Dataset data = SmallBlobs(3, 3);
  GbdtClassifier model(GbdtConfig());
  model.Train(data.features, data.labels, 3);
  for (size_t r = 0; r < 20; ++r) {
    std::vector<double> scores = model.RawScores(data.features.RowPtr(r), 5);
    int argmax = 0;
    for (int k = 1; k < 3; ++k) {
      if (scores[k] > scores[argmax]) argmax = k;
    }
    EXPECT_EQ(model.Predict(data.features.RowPtr(r), 5), argmax);
  }
}

TEST(GbdtDetails, ExactlyInvariantToStrictlyMonotoneRescaling) {
  // Histogram splits are defined by value order, so multiplying a feature
  // by a positive constant must give identical predictions.
  Dataset data = SmallBlobs(2, 4);
  Dataset scaled = data;
  for (size_t r = 0; r < scaled.num_rows(); ++r) {
    for (size_t c = 0; c < scaled.num_cols(); ++c) {
      scaled.features(r, c) = data.features(r, c) * 1000.0;
    }
  }
  GbdtClassifier a(GbdtConfig()), b(GbdtConfig());
  a.Train(data.features, data.labels, 2);
  b.Train(scaled.features, scaled.labels, 2);
  EXPECT_EQ(a.PredictBatch(data.features), b.PredictBatch(scaled.features));
}

TEST(GbdtDetails, HigherEtaFitsFasterEarly) {
  Dataset data = SmallBlobs(2, 5);
  ModelConfig slow = GbdtConfig();
  slow.xgb_rounds = 3;
  slow.xgb_eta = 0.05;
  ModelConfig fast = slow;
  fast.xgb_eta = 0.5;
  GbdtClassifier slow_model(slow), fast_model(fast);
  slow_model.Train(data.features, data.labels, 2);
  fast_model.Train(data.features, data.labels, 2);
  EXPECT_GE(EvaluateAccuracy(fast_model, data.features, data.labels),
            EvaluateAccuracy(slow_model, data.features, data.labels));
}

TEST(GbdtDetails, LargeMinChildWeightShrinksTrees) {
  Dataset data = SmallBlobs(2, 6);
  ModelConfig loose = GbdtConfig();
  loose.xgb_rounds = 1;
  loose.xgb_min_child_weight = 0.1;
  ModelConfig strict = loose;
  strict.xgb_min_child_weight = 30.0;
  GbdtClassifier loose_model(loose), strict_model(strict);
  loose_model.Train(data.features, data.labels, 2);
  strict_model.Train(data.features, data.labels, 2);
  EXPECT_EQ(loose_model.num_trees(), 1u);
  // Both trained; strict constraint cannot make trees larger. (Tree size
  // is internal; verify through behaviour: strict model is at most as
  // accurate on training data as the loose one.)
  EXPECT_LE(EvaluateAccuracy(strict_model, data.features, data.labels),
            EvaluateAccuracy(loose_model, data.features, data.labels) + 1e-9);
}

TEST(GbdtDetails, HandlesConstantFeatures) {
  Matrix features(50, 2);
  std::vector<int> labels(50);
  Rng rng(7);
  for (size_t r = 0; r < 50; ++r) {
    features(r, 0) = 3.0;  // constant.
    features(r, 1) = rng.Gaussian();
    labels[r] = features(r, 1) > 0 ? 1 : 0;
  }
  GbdtClassifier model(GbdtConfig());
  model.Train(features, labels, 2);
  EXPECT_GT(EvaluateAccuracy(model, features, labels), 0.95);
}

TEST(GbdtDetails, HandlesBinaryValuedFeatures) {
  // Post-Binarizer data: every feature is in {0, 1}.
  Matrix features(80, 3);
  std::vector<int> labels(80);
  Rng rng(8);
  for (size_t r = 0; r < 80; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      features(r, c) = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    }
    labels[r] = static_cast<int>(features(r, 0)) ^
                static_cast<int>(features(r, 1));  // XOR, tree-learnable.
  }
  GbdtClassifier model(GbdtConfig());
  model.Train(features, labels, 2);
  EXPECT_GT(EvaluateAccuracy(model, features, labels), 0.95);
}

TEST(GbdtDetails, DepthOneIsAdditiveStumps) {
  Dataset data = SmallBlobs(2, 9);
  ModelConfig config = GbdtConfig();
  config.xgb_max_depth = 1;
  config.xgb_rounds = 10;
  GbdtClassifier model(config);
  model.Train(data.features, data.labels, 2);
  EXPECT_EQ(model.num_trees(), 10u);
  EXPECT_GT(EvaluateAccuracy(model, data.features, data.labels), 0.8);
}

TEST(GbdtDetails, MoreBinsNeverWorseOnSeparableData) {
  Dataset data = SmallBlobs(2, 10);
  ModelConfig coarse = GbdtConfig();
  coarse.xgb_max_bins = 4;
  ModelConfig fine = GbdtConfig();
  fine.xgb_max_bins = 64;
  GbdtClassifier coarse_model(coarse), fine_model(fine);
  coarse_model.Train(data.features, data.labels, 2);
  fine_model.Train(data.features, data.labels, 2);
  EXPECT_GE(EvaluateAccuracy(fine_model, data.features, data.labels) + 0.02,
            EvaluateAccuracy(coarse_model, data.features, data.labels));
}

}  // namespace
}  // namespace autofp
