/// Tests of the durable-run subsystem: journal round-trip, corruption
/// handling (torn tail accepted, mid-file corruption/version/fingerprint
/// mismatches rejected with typed errors), replay semantics, and
/// kill-point crash-resume determinism across search algorithms — the
/// in-process counterpart of scripts/check_crash.sh.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/run_journal.h"
#include "core/search_framework.h"
#include "core/search_space.h"
#include "data/synthetic.h"
#include "search/registry.h"
#include "util/random.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << path;
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JournalRecord SampleRecord(int index) {
  JournalRecord record;
  record.pipeline = index % 2 == 0 ? "StandardScaler -> Binarizer"
                                   : "Normalizer";
  record.budget_fraction = index % 3 == 0 ? 1.0 : 0.25;
  record.seed = 0x9000 + static_cast<uint64_t>(index);
  record.accuracy = 0.5 + 0.01 * index;
  record.failure = index == 2 ? EvalFailure::kNonFiniteOutput
                              : EvalFailure::kNone;
  record.status_code =
      index == 2 ? static_cast<int>(StatusCode::kOutOfRange) : 0;
  record.status_message = index == 2 ? "rigged non-finite" : "";
  record.attempts = 1 + index % 2;
  record.elapsed_seconds = 0.125 * index;
  record.prep_seconds = 0.01 * index;
  record.train_seconds = 0.02 * index;
  return record;
}

std::string WriteSampleJournal(const std::string& name, int num_records,
                               uint64_t options_fp = 11,
                               uint64_t dataset_fp = 22) {
  std::string path = TempPath(name);
  RunJournalOptions options;
  options.meta = "test journal";
  auto writer =
      RunJournalWriter::Create(path, options_fp, dataset_fp, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < num_records; ++i) {
    EXPECT_TRUE(writer.value()->Append(SampleRecord(i)).ok());
  }
  return path;
}

// ---------------------------------------------------------------------------
// Round-trip and header validation.

TEST(RunJournal, RoundTripPreservesEveryField) {
  std::string path = WriteSampleJournal("roundtrip.journal", 4);
  JournalReadResult read = ReadRunJournal(path);
  ASSERT_TRUE(read.ok()) << read.status.ToString();
  EXPECT_EQ(read.header.version, kRunJournalVersion);
  EXPECT_EQ(read.header.options_fingerprint, 11u);
  EXPECT_EQ(read.header.dataset_fingerprint, 22u);
  EXPECT_EQ(read.header.meta, "test journal");
  EXPECT_EQ(read.dropped_tail_bytes, 0u);
  ASSERT_EQ(read.records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const JournalRecord expected = SampleRecord(i);
    const JournalRecord& actual = read.records[i];
    EXPECT_EQ(actual.pipeline, expected.pipeline);
    EXPECT_DOUBLE_EQ(actual.budget_fraction, expected.budget_fraction);
    EXPECT_EQ(actual.seed, expected.seed);
    EXPECT_DOUBLE_EQ(actual.accuracy, expected.accuracy);
    EXPECT_EQ(actual.failure, expected.failure);
    EXPECT_EQ(actual.status_code, expected.status_code);
    EXPECT_EQ(actual.status_message, expected.status_message);
    EXPECT_EQ(actual.attempts, expected.attempts);
    EXPECT_DOUBLE_EQ(actual.elapsed_seconds, expected.elapsed_seconds);
    EXPECT_DOUBLE_EQ(actual.prep_seconds, expected.prep_seconds);
    EXPECT_DOUBLE_EQ(actual.train_seconds, expected.train_seconds);
  }
}

TEST(RunJournal, EvaluationRecordRoundTrip) {
  Evaluation evaluation;
  evaluation.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler,
                               PreprocessorKind::kBinarizer});
  evaluation.accuracy = 0.875;
  evaluation.budget_fraction = 0.5;
  evaluation.failure = EvalFailure::kModelDiverged;
  evaluation.status = Status::Internal("diverged");
  evaluation.attempts = 2;
  evaluation.timing.prep_seconds = 0.25;
  JournalRecord record = MakeJournalRecord(evaluation, 77, 1.5);
  EXPECT_EQ(record.seed, 77u);
  EXPECT_DOUBLE_EQ(record.elapsed_seconds, 1.5);
  Evaluation back = EvaluationFromRecord(record);
  EXPECT_EQ(back.pipeline, evaluation.pipeline);
  EXPECT_DOUBLE_EQ(back.accuracy, evaluation.accuracy);
  EXPECT_DOUBLE_EQ(back.budget_fraction, evaluation.budget_fraction);
  EXPECT_EQ(back.failure, evaluation.failure);
  EXPECT_EQ(back.status.code(), StatusCode::kInternal);
  EXPECT_EQ(back.status.message(), "diverged");
  EXPECT_EQ(back.attempts, 2);
  EXPECT_DOUBLE_EQ(back.timing.prep_seconds, 0.25);
}

TEST(RunJournal, MissingFileIsIoError) {
  JournalReadResult read = ReadRunJournal(TempPath("does_not_exist.journal"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.error, JournalError::kIoError);
}

TEST(RunJournal, BadMagicRejected) {
  std::string path = TempPath("bad_magic.journal");
  WriteFileBytes(path, "definitely not a journal file");
  JournalReadResult read = ReadRunJournal(path);
  EXPECT_EQ(read.error, JournalError::kBadMagic);
}

TEST(RunJournal, VersionMismatchRejected) {
  std::string path = WriteSampleJournal("version.journal", 2);
  std::string bytes = ReadFileBytes(path);
  // The u32 version sits right after the 4-byte magic.
  bytes[4] = static_cast<char>(kRunJournalVersion + 1);
  WriteFileBytes(path, bytes);
  JournalReadResult read = ReadRunJournal(path);
  EXPECT_EQ(read.error, JournalError::kVersionMismatch);
  EXPECT_EQ(read.header.version, kRunJournalVersion + 1);
}

TEST(RunJournal, HeaderCorruptionRejected) {
  std::string path = WriteSampleJournal("header_crc.journal", 1);
  std::string bytes = ReadFileBytes(path);
  bytes[10] = static_cast<char>(bytes[10] ^ 0x40);  // inside a fingerprint.
  WriteFileBytes(path, bytes);
  EXPECT_EQ(ReadRunJournal(path).error, JournalError::kCorruptHeader);
}

TEST(RunJournal, FingerprintMismatchIsTypedError) {
  std::string path = WriteSampleJournal("fingerprint.journal", 1, 11, 22);
  JournalReadResult read = ReadRunJournal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ValidateJournalHeader(read.header, 11, 22), JournalError::kNone);
  Status detail;
  EXPECT_EQ(ValidateJournalHeader(read.header, 99, 22, &detail),
            JournalError::kOptionsMismatch);
  EXPECT_FALSE(detail.ok());
  EXPECT_EQ(ValidateJournalHeader(read.header, 11, 99, &detail),
            JournalError::kDatasetMismatch);
}

// ---------------------------------------------------------------------------
// Corruption: torn tails are recovered, mid-file damage is rejected.

TEST(RunJournal, TruncatedTailRecordIsDroppedWithoutDataLoss) {
  std::string path = WriteSampleJournal("torn.journal", 3);
  std::string bytes = ReadFileBytes(path);
  for (size_t cut : {1u, 7u, 20u}) {
    WriteFileBytes(path, bytes.substr(0, bytes.size() - cut));
    JournalReadResult read = ReadRunJournal(path);
    ASSERT_TRUE(read.ok()) << "cut " << cut << ": " << read.status.ToString();
    EXPECT_EQ(read.records.size(), 2u) << "cut " << cut;
    EXPECT_GT(read.dropped_tail_bytes, 0u);
    EXPECT_EQ(read.records[1].pipeline, SampleRecord(1).pipeline);
  }
}

TEST(RunJournal, CrcMismatchInFinalRecordIsATornTail) {
  std::string path = WriteSampleJournal("tail_crc.journal", 3);
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() - 6] ^= 0x01;  // inside the last record's payload.
  WriteFileBytes(path, bytes);
  JournalReadResult read = ReadRunJournal(path);
  ASSERT_TRUE(read.ok()) << read.status.ToString();
  EXPECT_EQ(read.records.size(), 2u);
  EXPECT_GT(read.dropped_tail_bytes, 0u);
}

TEST(RunJournal, CrcMismatchMidFileRejected) {
  std::string path = WriteSampleJournal("midfile.journal", 3);
  std::string bytes = ReadFileBytes(path);
  // Find the first record's payload: it starts right after the header,
  // which ends after meta + CRC. Flip a byte a little past that point.
  JournalReadResult intact = ReadRunJournal(path);
  ASSERT_TRUE(intact.ok());
  // Header = magic(4) + version(4) + fps(16) + meta len(4)+bytes + crc(4).
  size_t header_size = 4 + 4 + 16 + 4 + intact.header.meta.size() + 4;
  bytes[header_size + 12] ^= 0x10;  // inside record 0's payload.
  WriteFileBytes(path, bytes);
  JournalReadResult read = ReadRunJournal(path);
  EXPECT_EQ(read.error, JournalError::kCorruptRecord);
  EXPECT_FALSE(read.status.ok());
}

TEST(RunJournal, OversizedLengthFieldIsCorruptionNotATornTail) {
  // A torn append leaves a *short* length field; a fully-present garbage
  // length (flipped bit) is corruption. Classifying it as a torn tail
  // would silently drop the two intact records that follow.
  std::string path = WriteSampleJournal("oversized_len.journal", 3);
  std::string bytes = ReadFileBytes(path);
  JournalReadResult intact = ReadRunJournal(path);
  ASSERT_TRUE(intact.ok());
  // Header = magic(4) + version(4) + fps(16) + meta len(4)+bytes + crc(4);
  // record 0's u32 length field sits immediately after.
  size_t header_size = 4 + 4 + 16 + 4 + intact.header.meta.size() + 4;
  uint32_t huge = 0x7F000000u;
  std::memcpy(bytes.data() + header_size, &huge, sizeof(huge));
  WriteFileBytes(path, bytes);
  JournalReadResult read = ReadRunJournal(path);
  EXPECT_EQ(read.error, JournalError::kCorruptRecord);
  EXPECT_FALSE(read.status.ok());
}

TEST(RunJournal, OpenForAppendDropsTornTail) {
  std::string path = WriteSampleJournal("append.journal", 3);
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 3));
  auto writer = RunJournalWriter::OpenForAppend(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value()->Append(SampleRecord(7)).ok());
  JournalReadResult read = ReadRunJournal(path);
  ASSERT_TRUE(read.ok()) << read.status.ToString();
  ASSERT_EQ(read.records.size(), 3u);  // 2 intact + 1 fresh, torn one gone.
  EXPECT_EQ(read.dropped_tail_bytes, 0u);
  EXPECT_EQ(read.records[2].seed, SampleRecord(7).seed);
}

// ---------------------------------------------------------------------------
// Replay semantics.

TEST(RunJournalReplay, ServesFifoPerRequestIdentity) {
  std::vector<JournalRecord> records;
  for (int i = 0; i < 2; ++i) {
    JournalRecord record;
    record.pipeline = "Normalizer";
    record.budget_fraction = 1.0;
    record.accuracy = 0.1 * (i + 1);
    records.push_back(record);
  }
  RunJournalReplay replay(records);
  EXPECT_EQ(replay.remaining(), 2u);
  EXPECT_FALSE(replay.Take("Binarizer", 1.0).has_value());
  EXPECT_FALSE(replay.Take("Normalizer", 0.5).has_value());
  auto first = replay.Take("Normalizer", 1.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->accuracy, 0.1);
  auto second = replay.Take("Normalizer", 1.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->accuracy, 0.2);
  EXPECT_FALSE(replay.Take("Normalizer", 1.0).has_value());
  EXPECT_EQ(replay.remaining(), 0u);
}

TEST(RunJournalReplay, DeadlineFailuresAreNotReplayable) {
  // Wall-clock deadline outcomes depend on the original machine/moment,
  // not the pipeline: they re-run live on resume (DESIGN.md).
  JournalRecord deadline;
  deadline.pipeline = "Normalizer";
  deadline.failure = EvalFailure::kDeadlineExceeded;
  RunJournalReplay replay({deadline});
  EXPECT_EQ(replay.remaining(), 0u);
  EXPECT_EQ(replay.dropped_deadline_records(), 1u);
  EXPECT_FALSE(replay.Take("Normalizer", 1.0).has_value());
}

// ---------------------------------------------------------------------------
// Crash-resume determinism through SearchContext, for multiple
// algorithms x kill points (in-process twin of scripts/check_crash.sh).

/// Deterministic landscape that fails one specific pipeline permanently
/// and counts evaluator calls, so tests can assert both that quarantine
/// bookkeeping replays identically and that replay skips the evaluator.
class CountingRiggedEvaluator : public EvaluatorInterface {
 public:
  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    Evaluation evaluation;
    evaluation.pipeline = request.pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    if (!request.pipeline.empty() &&
        request.pipeline.steps[0].kind == PreprocessorKind::kNormalizer) {
      evaluation.failure = EvalFailure::kNonFiniteOutput;
      evaluation.status = Status::OutOfRange("rigged non-finite");
      evaluation.accuracy = kPenaltyAccuracy;
      return evaluation;
    }
    double score = 0.3;
    for (const PreprocessorConfig& step : request.pipeline.steps) {
      if (step.kind == PreprocessorKind::kBinarizer) score += 0.15;
    }
    score -= 0.02 * static_cast<double>(request.pipeline.size());
    evaluation.accuracy = std::min(score, 1.0);
    return evaluation;
  }
  double BaselineAccuracy() override { return 0.3; }
  long calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> calls_{0};
};

void ExpectSameHistory(const std::vector<Evaluation>& expected,
                       const std::vector<Evaluation>& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].pipeline.Key(), expected[i].pipeline.Key())
        << context << " entry " << i;
    EXPECT_DOUBLE_EQ(actual[i].accuracy, expected[i].accuracy)
        << context << " entry " << i;
    EXPECT_DOUBLE_EQ(actual[i].budget_fraction, expected[i].budget_fraction)
        << context << " entry " << i;
    EXPECT_EQ(actual[i].failure, expected[i].failure)
        << context << " entry " << i;
    EXPECT_EQ(actual[i].attempts, expected[i].attempts)
        << context << " entry " << i;
  }
}

class CrashResume : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashResume, KilledAndResumedRunMatchesUninterrupted) {
  const std::string algorithm_name = GetParam();
  SearchSpace space = SearchSpace::Default();
  SearchOptions base_options{Budget::Evaluations(60), 7};

  // Reference: one uninterrupted journaled run.
  std::string ref_path = TempPath(algorithm_name + "_ref.journal");
  std::vector<Evaluation> reference_history;
  std::string reference_best_key;
  long reference_calls = 0;
  {
    CountingRiggedEvaluator evaluator;
    auto algorithm = MakeSearchAlgorithm(algorithm_name).value();
    auto writer = RunJournalWriter::Create(ref_path, 1, 2);
    ASSERT_TRUE(writer.ok());
    SearchOptions options = base_options;
    options.journal = writer.value().get();
    SearchContext context(&space, &evaluator, options);
    algorithm->Initialize(&context);
    while (!context.BudgetExhausted()) algorithm->Iterate(&context);
    reference_history = context.history();
    if (context.has_best()) reference_best_key = context.best().pipeline.Key();
    reference_calls = evaluator.calls();
  }
  JournalReadResult full = ReadRunJournal(ref_path);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.records.size(), 30u);

  // Kill points: resume from a journal truncated to the first K records —
  // exactly what a crash after K durable appends leaves behind.
  for (size_t kill_point : {3u, 10u, 25u}) {
    std::vector<JournalRecord> prefix(full.records.begin(),
                                      full.records.begin() + kill_point);
    RunJournalReplay replay(prefix);
    CountingRiggedEvaluator evaluator;
    auto algorithm = MakeSearchAlgorithm(algorithm_name).value();
    SearchOptions options = base_options;
    options.replay = &replay;
    SearchContext context(&space, &evaluator, options);
    algorithm->Initialize(&context);
    while (!context.BudgetExhausted()) algorithm->Iterate(&context);

    std::string label = algorithm_name + "@" + std::to_string(kill_point);
    ExpectSameHistory(reference_history, context.history(), label);
    EXPECT_EQ(context.num_replayed(), static_cast<long>(kill_point)) << label;
    EXPECT_EQ(replay.remaining(), 0u) << label;
    // Replay must spare the evaluator exactly the journaled calls
    // (retries included: a replayed record absorbs its attempts too).
    long spared = 0;
    for (const JournalRecord& record : prefix) spared += record.attempts;
    EXPECT_EQ(evaluator.calls(), reference_calls - spared) << label;
    ASSERT_TRUE(context.has_best()) << label;
    EXPECT_EQ(context.best().pipeline.Key(), reference_best_key) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CrashResume,
                         ::testing::Values("RS", "TEVO_H", "HYPERBAND"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(CrashResume, QuarantineAndFailureCountersReplayIdentically) {
  SearchSpace space = SearchSpace::Default();
  SearchOptions base_options{Budget::Evaluations(50), 21};

  std::string path = TempPath("counters.journal");
  long ref_failures = 0, ref_quarantined = 0, ref_hits = 0, ref_successes = 0;
  std::vector<Evaluation> ref_history;
  {
    CountingRiggedEvaluator evaluator;
    auto algorithm = MakeSearchAlgorithm("RS").value();
    auto writer = RunJournalWriter::Create(path, 1, 2);
    ASSERT_TRUE(writer.ok());
    SearchOptions options = base_options;
    options.journal = writer.value().get();
    SearchContext context(&space, &evaluator, options);
    algorithm->Initialize(&context);
    while (!context.BudgetExhausted()) algorithm->Iterate(&context);
    ref_failures = context.num_failures();
    ref_quarantined = context.num_quarantined();
    ref_hits = context.num_quarantine_hits();
    ref_successes = context.num_successes();
    ref_history = context.history();
    ASSERT_GT(ref_quarantined, 0) << "landscape should quarantine Normalizer";
  }
  JournalReadResult full = ReadRunJournal(path);
  ASSERT_TRUE(full.ok());
  std::vector<JournalRecord> prefix(full.records.begin(),
                                    full.records.begin() + 12);
  RunJournalReplay replay(prefix);
  CountingRiggedEvaluator evaluator;
  auto algorithm = MakeSearchAlgorithm("RS").value();
  SearchOptions options = base_options;
  options.replay = &replay;
  SearchContext context(&space, &evaluator, options);
  algorithm->Initialize(&context);
  while (!context.BudgetExhausted()) algorithm->Iterate(&context);
  EXPECT_EQ(context.num_failures(), ref_failures);
  EXPECT_EQ(context.num_quarantined(), ref_quarantined);
  EXPECT_EQ(context.num_quarantine_hits(), ref_hits);
  EXPECT_EQ(context.num_successes(), ref_successes);
  ExpectSameHistory(ref_history, context.history(), "counters");
}

TEST(CrashResume, FullReplayNeverTouchesTheEvaluator) {
  SearchSpace space = SearchSpace::Default();
  SearchOptions base_options{Budget::Evaluations(40), 5};
  std::string path = TempPath("full_replay.journal");
  {
    CountingRiggedEvaluator evaluator;
    auto algorithm = MakeSearchAlgorithm("RS").value();
    auto writer = RunJournalWriter::Create(path, 1, 2);
    ASSERT_TRUE(writer.ok());
    SearchOptions options = base_options;
    options.journal = writer.value().get();
    SearchContext context(&space, &evaluator, options);
    algorithm->Initialize(&context);
    while (!context.BudgetExhausted()) algorithm->Iterate(&context);
  }
  JournalReadResult full = ReadRunJournal(path);
  ASSERT_TRUE(full.ok());
  RunJournalReplay replay(full.records);
  CountingRiggedEvaluator evaluator;
  auto algorithm = MakeSearchAlgorithm("RS").value();
  SearchOptions options = base_options;
  options.replay = &replay;
  SearchContext context(&space, &evaluator, options);
  algorithm->Initialize(&context);
  while (!context.BudgetExhausted()) algorithm->Iterate(&context);
  EXPECT_EQ(evaluator.calls(), 0);
  EXPECT_EQ(replay.remaining(), 0u);
}

TEST(CrashResume, JournaledElapsedSharesAreFiniteAndRestoreTimeBudget) {
  // Regression: the per-record elapsed share was divided by the size of a
  // moved-from vector (always 0), journaling inf into every record; a
  // resumed time-budgeted run then read elapsed_seconds() == inf and
  // stopped before its first evaluation.
  SearchSpace space = SearchSpace::Default();
  std::string path = TempPath("finite_elapsed.journal");
  {
    CountingRiggedEvaluator evaluator;
    auto writer = RunJournalWriter::Create(path, 1, 2);
    ASSERT_TRUE(writer.ok());
    SearchOptions options{Budget::Evaluations(16), 13};
    options.journal = writer.value().get();
    SearchContext context(&space, &evaluator, options);
    Rng rng(13);
    std::vector<PipelineSpec> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(space.SampleUniform(&rng));
    context.EvaluateBatch(batch);
    context.EvaluateBatch(batch);
  }
  JournalReadResult read = ReadRunJournal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read.records.empty());
  for (const JournalRecord& record : read.records) {
    EXPECT_TRUE(std::isfinite(record.elapsed_seconds))
        << record.pipeline << ": " << record.elapsed_seconds;
    EXPECT_GE(record.elapsed_seconds, 0.0);
  }
  // A resume under a generous time budget must not start exhausted.
  RunJournalReplay replay(read.records);
  CountingRiggedEvaluator evaluator;
  SearchOptions options{Budget::Seconds(3600.0), 13};
  options.replay = &replay;
  SearchContext context(&space, &evaluator, options);
  EXPECT_FALSE(context.BudgetExhausted());
  Rng rng(13);
  std::vector<PipelineSpec> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(space.SampleUniform(&rng));
  context.EvaluateBatch(batch);
  EXPECT_GT(context.num_replayed(), 0);
  EXPECT_TRUE(std::isfinite(context.elapsed_seconds()));
  EXPECT_FALSE(context.BudgetExhausted());
}

// ---------------------------------------------------------------------------
// Graceful stop: the flag reads as budget exhaustion at the next boundary.

TEST(GracefulStop, StopFlagEndsSearchAtEvaluationBoundary) {
  SearchSpace space = SearchSpace::Default();
  CountingRiggedEvaluator evaluator;
  volatile std::sig_atomic_t stop = 0;
  SearchOptions options{Budget::Evaluations(1000), 3};
  options.stop_flag = &stop;
  SearchContext context(&space, &evaluator, options);
  Rng rng(3);
  PipelineSpec pipeline = space.SampleUniform(&rng);
  EXPECT_TRUE(context.Evaluate(pipeline).has_value());
  stop = 1;
  EXPECT_TRUE(context.BudgetExhausted());
  EXPECT_TRUE(context.interrupted());
  EXPECT_FALSE(context.Evaluate(pipeline).has_value());
  EXPECT_EQ(context.num_evaluations(), 1);
}

TEST(GracefulStop, RunSearchReportsInterrupted) {
  SearchSpace space = SearchSpace::Default();
  CountingRiggedEvaluator evaluator;
  volatile std::sig_atomic_t stop = 1;  // stop before the first iteration.
  SearchOptions options{Budget::Evaluations(1000), 3};
  options.stop_flag = &stop;
  auto algorithm = MakeSearchAlgorithm("RS").value();
  SearchResult result = RunSearch(algorithm.get(), &evaluator, space, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.num_evaluations, 0);
  EXPECT_EQ(result.num_successes, 0);
}

// ---------------------------------------------------------------------------
// Fingerprints.

TEST(Fingerprints, SearchOptionsFingerprintIgnoresEngineKnobs) {
  SearchOptions a{Budget::Evaluations(100), 42};
  SearchOptions b = a;
  b.num_threads = 8;
  b.cache_bytes = 1 << 20;
  // History is thread/cache-invariant, so resume across them is legal.
  EXPECT_EQ(SearchOptionsFingerprint(a), SearchOptionsFingerprint(b));
  SearchOptions c = a;
  c.seed = 43;
  EXPECT_NE(SearchOptionsFingerprint(a), SearchOptionsFingerprint(c));
  SearchOptions d = a;
  d.budget = Budget::Evaluations(101);
  EXPECT_NE(SearchOptionsFingerprint(a), SearchOptionsFingerprint(d));
}

TEST(Fingerprints, DatasetFingerprintSeesContent) {
  SyntheticSpec spec;
  spec.name = "fp";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 40;
  spec.cols = 3;
  spec.num_classes = 2;
  spec.seed = 9;
  Dataset a = GenerateSynthetic(spec);
  Dataset b = GenerateSynthetic(spec);
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));
  b.features(0, 0) += 1.0;
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(b));
}

}  // namespace
}  // namespace autofp
