/// Tests of the network serving stack (src/serve/server.h and
/// src/serve/registry.h): the hot-swap registry's publish semantics, the
/// socket round trip's bit-identity with in-process PredictSharded,
/// admission control, pipelined request/response ordering, the poll(2)
/// fallback, and the headline concurrency property — a SWAP landing
/// under live multi-connection load yields only whole-response
/// old-artifact or new-artifact answers, never a torn mix.

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmark_suite.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace autofp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Dataset TestData() {
  Result<Dataset> data = GetSuiteDataset("blood_syn");
  AUTOFP_CHECK(data.ok()) << data.status().ToString();
  return std::move(data).value();
}

std::string ExportTestArtifact(const Dataset& data, PreprocessorKind kind,
                               const std::string& name) {
  std::string path = TempPath(name);
  Result<ArtifactSchema> exported = ExportArtifact(
      path, data, PipelineSpec::FromKinds({kind}),
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  AUTOFP_CHECK(exported.ok()) << exported.status().ToString();
  return path;
}

/// In-process reference answers for `rows` under the artifact at `path`.
std::vector<int32_t> ReferencePredictions(const std::string& path,
                                          const Matrix& rows) {
  Predictor::LoadResult loaded = Predictor::Load(path, {});
  AUTOFP_CHECK(loaded.ok()) << loaded.status().ToString();
  Result<std::vector<int>> predictions =
      loaded.predictor().PredictSharded(rows, 256);
  AUTOFP_CHECK(predictions.ok()) << predictions.status().ToString();
  return std::vector<int32_t>(predictions.value().begin(),
                              predictions.value().end());
}

Matrix ProbeRows(const Dataset& data, size_t count) {
  const size_t rows = std::min(count, data.features.rows());
  Matrix probe(rows, data.features.cols());
  for (size_t r = 0; r < rows; ++r) {
    const double* src = data.features.RowPtr(r);
    std::copy(src, src + data.features.cols(), probe.RowPtr(r));
  }
  return probe;
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, SwapPublishesAndFailedSwapKeepsOld) {
  Dataset data = TestData();
  const std::string path_a =
      ExportTestArtifact(data, PreprocessorKind::kStandardScaler, "reg_a.afpa");

  ArtifactRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  EXPECT_EQ(registry.Info().generation, 0);

  ASSERT_TRUE(registry.Swap(path_a).ok());
  std::shared_ptr<const Predictor> live = registry.Acquire();
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(registry.Info().generation, 1);
  EXPECT_EQ(registry.Info().path, path_a);

  // A failed swap (missing file) must leave the old predictor serving.
  Status failed = registry.Swap(TempPath("registry_missing.afpa"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(registry.Acquire(), live);
  EXPECT_EQ(registry.Info().generation, 1);

  // An acquired reference outlives any number of swaps.
  ASSERT_TRUE(registry.Swap(path_a).ok());
  EXPECT_EQ(registry.Info().generation, 2);
  EXPECT_NE(registry.Acquire(), live);  // fresh load
  Matrix probe = ProbeRows(data, 4);
  EXPECT_TRUE(live->PredictSharded(probe, 2).ok());
}

TEST(Registry, CorruptOrTruncatedSwapKeepsOldPredictorServing) {
  Dataset data = TestData();
  const std::string good = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "reg_swap_good.afpa");
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Swap(good).ok());
  std::shared_ptr<const Predictor> live = registry.Acquire();
  ASSERT_NE(live, nullptr);

  // Garbage bytes: typed corruption error, generation frozen, the
  // already-published predictor object keeps serving untouched.
  const std::string corrupt = TempPath("reg_swap_corrupt.afpa");
  {
    std::ofstream out(corrupt, std::ios::binary);
    out << std::string(512, 'x');
  }
  Status corrupt_swap = registry.Swap(corrupt);
  ASSERT_FALSE(corrupt_swap.ok());
  EXPECT_EQ(corrupt_swap.code(), StatusCode::kInvalidArgument)
      << corrupt_swap.ToString();
  EXPECT_EQ(registry.Info().generation, 1);
  EXPECT_EQ(registry.Acquire(), live);

  // A torn copy of a real artifact (valid preamble, truncated section):
  // same guarantee.
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);
  const std::string truncated = TempPath("reg_swap_truncated.afpa");
  {
    std::ofstream out(truncated, std::ios::binary);
    out << bytes.substr(0, bytes.size() / 2);
  }
  Status truncated_swap = registry.Swap(truncated);
  ASSERT_FALSE(truncated_swap.ok());
  EXPECT_EQ(truncated_swap.code(), StatusCode::kInvalidArgument)
      << truncated_swap.ToString();
  EXPECT_EQ(registry.Info().generation, 1);
  EXPECT_EQ(registry.Acquire(), live);

  // The survivor still scores.
  Matrix probe = ProbeRows(data, 4);
  EXPECT_TRUE(registry.Acquire()->PredictSharded(probe, 2).ok());
}

TEST(Registry, ReloadNeedsALoadedArtifact) {
  ArtifactRegistry registry;
  Status reloaded = registry.Reload();
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kNotFound);

  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kMinMaxScaler, "reg_reload.afpa");
  ASSERT_TRUE(registry.Swap(path).ok());
  ASSERT_TRUE(registry.Reload().ok());
  EXPECT_EQ(registry.Info().generation, 2);
}

// --- Socket server ----------------------------------------------------------

/// A registry + running server bound to an ephemeral port.
struct TestServer {
  explicit TestServer(const std::string& artifact_path,
                      ServerOptions options = {}) {
    AUTOFP_CHECK(registry.Swap(artifact_path).ok());
    server = std::make_unique<ServeSocketServer>(&registry, options);
    Status started = server->Start();
    AUTOFP_CHECK(started.ok()) << started.ToString();
  }

  ArtifactRegistry registry;
  std::unique_ptr<ServeSocketServer> server;
};

TEST(ServeNet, DenseRoundTripIsBitIdenticalToInProcess) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_dense.afpa");
  Matrix probe = ProbeRows(data, 48);
  const std::vector<int32_t> want = ReferencePredictions(path, probe);

  TestServer harness(path);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  std::string request;
  EncodePredictDense(probe, &request);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.predictions, want);
}

TEST(ServeNet, CsvAndDenseAgree) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kMinMaxScaler, "net_csv.afpa");
  Matrix probe = ProbeRows(data, 16);

  TestServer harness(path);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());

  std::string dense_request;
  EncodePredictDense(probe, &dense_request);
  ServeResponse dense_response;
  ASSERT_TRUE(client.RoundTrip(dense_request, &dense_response).ok());
  ASSERT_TRUE(dense_response.ok()) << dense_response.message;

  // The CSV path must agree exactly ("%.17g" round-trips doubles).
  std::string csv;
  char cell[64];
  for (size_t r = 0; r < probe.rows(); ++r) {
    for (size_t c = 0; c < probe.cols(); ++c) {
      std::snprintf(cell, sizeof(cell), "%.17g", probe(r, c));
      if (c > 0) csv += ',';
      csv += cell;
    }
    csv += '\n';
  }
  std::string csv_request;
  EncodePredictCsv(csv, &csv_request);
  ServeResponse csv_response;
  ASSERT_TRUE(client.RoundTrip(csv_request, &csv_response).ok());
  ASSERT_TRUE(csv_response.ok()) << csv_response.message;
  EXPECT_EQ(csv_response.predictions, dense_response.predictions);
}

TEST(ServeNet, PollFallbackRoundTrips) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_poll.afpa");
  Matrix probe = ProbeRows(data, 8);
  const std::vector<int32_t> want = ReferencePredictions(path, probe);

  ServerOptions options;
  options.use_poll = true;
  TestServer harness(path, options);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  std::string request;
  EncodePredictDense(probe, &request);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.predictions, want);
}

TEST(ServeNet, PipelinedRequestsAnswerInOrder) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_pipeline.afpa");
  Matrix probe = ProbeRows(data, 4);

  TestServer harness(path);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());

  // One write carrying predict | ping | stats | bad-type | predict: five
  // responses must come back in exactly that order (admin frames and
  // admission-time errors ride the same per-connection FIFO).
  std::string burst;
  EncodePredictDense(probe, &burst);
  EncodePing(&burst);
  EncodeStats(&burst);
  EncodeFrame(static_cast<FrameType>(42), "???", &burst);
  EncodePredictDense(probe, &burst);
  ASSERT_TRUE(client.SendBytes(burst).ok());

  const FrameType want_order[] = {FrameType::kPredictions, FrameType::kPong,
                                  FrameType::kStatsReport, FrameType::kError,
                                  FrameType::kPredictions};
  for (FrameType want : want_order) {
    Frame frame;
    ASSERT_TRUE(client.RecvFrame(&frame).ok());
    EXPECT_EQ(frame.frame_type(), want);
    if (want == FrameType::kError) {
      ServeResponse response;
      ASSERT_TRUE(DecodeResponseFrame(frame, &response));
      EXPECT_EQ(response.error, ServeError::kBadType);
    }
    if (want == FrameType::kStatsReport) {
      ServeResponse response;
      ASSERT_TRUE(DecodeResponseFrame(frame, &response));
      EXPECT_NE(response.message.find("generation="), std::string::npos);
    }
  }
}

TEST(ServeNet, OversizedRequestIsShedBusy) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_busy.afpa");
  // A queue bound smaller than one request: deterministically BUSY.
  ServerOptions options;
  options.max_queue_rows = 4;
  TestServer harness(path, options);

  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  Matrix probe = ProbeRows(data, 16);
  std::string request;
  EncodePredictDense(probe, &request);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  EXPECT_EQ(response.error, ServeError::kBusy);
  // The connection survives shedding; a small request goes through.
  Matrix small = ProbeRows(data, 2);
  request.clear();
  EncodePredictDense(small, &request);
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  EXPECT_TRUE(response.ok()) << response.message;
  EXPECT_GE(harness.server->counters().busy_shed, 1);
}

TEST(ServeNet, SchemaMismatchIsTypedAndNonFatal) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_schema.afpa");
  TestServer harness(path);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());

  Matrix wrong(3, data.features.cols() + 3, 1.0);
  std::string request;
  EncodePredictDense(wrong, &request);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  EXPECT_EQ(response.error, ServeError::kSchemaMismatch);

  Matrix probe = ProbeRows(data, 2);
  request.clear();
  EncodePredictDense(probe, &request);
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  EXPECT_TRUE(response.ok());
}

TEST(ServeNet, GarbageGetsTypedErrorThenClose) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_garbage.afpa");
  TestServer harness(path);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  ASSERT_TRUE(client.SendBytes("complete nonsense, not a frame").ok());
  Frame frame;
  ASSERT_TRUE(client.RecvFrame(&frame).ok());
  ServeResponse response;
  ASSERT_TRUE(DecodeResponseFrame(frame, &response));
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(IsConnectionFatal(response.error))
      << ServeErrorName(response.error);
  // The server closes the desynced connection: the next read hits EOF.
  EXPECT_FALSE(client.RecvFrame(&frame).ok());
  // And the server itself is unharmed.
  BlockingFrameClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", harness.server->port()).ok());
  std::string ping;
  EncodePing(&ping);
  ASSERT_TRUE(fresh.RoundTrip(ping, &response).ok());
  EXPECT_TRUE(response.ok());
}

TEST(ServeNet, DeadClientIsATypedDisconnectNotAnError) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_dead.afpa");
  TestServer harness(path);
  Matrix probe = ProbeRows(data, 32);
  std::string request;
  EncodePredictDense(probe, &request);

  // A client that sends a pipelined burst and vanishes without reading a
  // byte back: the server's answer writes hit EPIPE/ECONNRESET. With
  // SIGPIPE ignored that must be a counted peer disconnect, never a
  // protocol error or a server death.
  {
    BlockingFrameClient deserter;
    ASSERT_TRUE(deserter.Connect("127.0.0.1", harness.server->port()).ok());
    std::string burst;
    for (int i = 0; i < 8; ++i) burst += request;
    ASSERT_TRUE(deserter.SendBytes(burst).ok());
    deserter.Close();
  }
  for (int i = 0;
       i < 500 && harness.server->counters().peer_disconnects < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(harness.server->counters().peer_disconnects, 1);
  EXPECT_EQ(harness.server->counters().protocol_errors, 0);

  // The server is unharmed: a well-behaved client still gets answers.
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  EXPECT_TRUE(response.ok()) << response.message;
}

TEST(ServeNet, SwapFrameSwapsAndFailedSwapKeepsServing) {
  Dataset data = TestData();
  const std::string path_a = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_swap_a.afpa");
  const std::string path_b = ExportTestArtifact(
      data, PreprocessorKind::kMinMaxScaler, "net_swap_b.afpa");
  Matrix probe = ProbeRows(data, 24);
  const std::vector<int32_t> want_b = ReferencePredictions(path_b, probe);

  TestServer harness(path_a);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port()).ok());

  // A swap against a missing artifact is a typed error and nothing moves.
  std::string bad_swap;
  EncodeSwap(TempPath("net_swap_missing.afpa"), &bad_swap);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(bad_swap, &response).ok());
  EXPECT_EQ(response.error, ServeError::kUnavailable);
  EXPECT_EQ(harness.registry.Info().generation, 1);

  // A good swap answers kSwapped and scoring flips to the new artifact.
  std::string good_swap;
  EncodeSwap(path_b, &good_swap);
  ASSERT_TRUE(client.RoundTrip(good_swap, &response).ok());
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_EQ(response.type, FrameType::kSwapped);
  EXPECT_NE(response.message.find("generation=2"), std::string::npos)
      << response.message;

  std::string request;
  EncodePredictDense(probe, &request);
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.predictions, want_b);
  EXPECT_GE(harness.server->counters().swaps, 1);
}

TEST(ServeNet, RequestReloadBumpsGeneration) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_reload.afpa");
  TestServer harness(path);
  harness.server->RequestReload();
  // The reload is queued to the batch thread; wait for it to land.
  for (int i = 0; i < 200 && harness.registry.Info().generation < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(harness.registry.Info().generation, 2);
}

TEST(HotSwap, UnderConcurrentLoadResponsesAreNeverTorn) {
  Dataset data = TestData();
  const std::string path_a = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "hot_a.afpa");
  const std::string path_b = ExportTestArtifact(
      data, PreprocessorKind::kQuantileTransformer, "hot_b.afpa");
  Matrix probe = ProbeRows(data, 16);
  const std::vector<int32_t> want_a = ReferencePredictions(path_a, probe);
  const std::vector<int32_t> want_b = ReferencePredictions(path_b, probe);

  // Tight micro-batch delay so batches span several requests while the
  // swaps land mid-stream.
  ServerOptions options;
  options.max_delay_us = 100;
  TestServer harness(path_a, options);
  const int port = harness.server->port();

  constexpr int kWorkers = 4;
  constexpr int kRequestsPerWorker = 150;
  std::atomic<long> torn{0};
  std::atomic<long> transport_errors{0};
  std::atomic<long> answered{0};
  std::vector<std::thread> workers;
  std::string request;
  EncodePredictDense(probe, &request);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      BlockingFrameClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++transport_errors;
        return;
      }
      for (int i = 0; i < kRequestsPerWorker; ++i) {
        ServeResponse response;
        if (!client.RoundTrip(request, &response).ok() || !response.ok()) {
          ++transport_errors;
          return;
        }
        ++answered;
        // The whole response must come from ONE artifact.
        if (response.predictions != want_a &&
            response.predictions != want_b) {
          ++torn;
        }
      }
    });
  }
  // Swap back and forth while the workers hammer the server, ending on B.
  for (const std::string* target : {&path_b, &path_a, &path_b}) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    BlockingFrameClient admin;
    ASSERT_TRUE(admin.Connect("127.0.0.1", port).ok());
    std::string swap;
    EncodeSwap(*target, &swap);
    ServeResponse response;
    ASSERT_TRUE(admin.RoundTrip(swap, &response).ok());
    ASSERT_TRUE(response.ok()) << response.message;
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(answered.load(), kWorkers * kRequestsPerWorker);
  // The last swap won: a fresh request scores under artifact B.
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.predictions, want_b);
  EXPECT_EQ(harness.registry.Info().generation, 4);
}

TEST(ServeNet, StopDrainsCleanly) {
  Dataset data = TestData();
  const std::string path = ExportTestArtifact(
      data, PreprocessorKind::kStandardScaler, "net_stop.afpa");
  auto harness = std::make_unique<TestServer>(path);
  Matrix probe = ProbeRows(data, 8);
  BlockingFrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness->server->port()).ok());
  std::string request;
  EncodePredictDense(probe, &request);
  ServeResponse response;
  ASSERT_TRUE(client.RoundTrip(request, &response).ok());
  harness->server->Stop();
  // Stop is idempotent and the destructor after Stop is a no-op.
  harness->server->Stop();
  harness.reset();
}

}  // namespace
}  // namespace autofp
