/// Edge-case and robustness tests across modules: tiny datasets, extreme
/// values, degenerate configurations, and budget corner cases.

#include <cmath>

#include <gtest/gtest.h>

#include "core/auto_fp.h"
#include "data/synthetic.h"
#include "ml/cross_validation.h"
#include "ml/knn.h"
#include "search/registry.h"
#include "search/two_step.h"

namespace autofp {
namespace {

TEST(EdgePreprocess, PipelineOnTwoRowDataset) {
  Matrix train = {{1.0, -5.0}, {2.0, 5.0}};
  Matrix valid = {{1.5, 0.0}};
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer,
       PreprocessorKind::kQuantileTransformer,
       PreprocessorKind::kStandardScaler});
  TransformedPair pair = FitTransformPair(spec, train, valid);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_TRUE(std::isfinite(pair.valid(0, c)));
  }
}

TEST(EdgePreprocess, AllConstantDataset) {
  Matrix train(10, 3, 4.2);
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    auto preprocessor = MakePreprocessor(kind);
    Matrix out = preprocessor->FitTransform(train);
    for (size_t r = 0; r < out.rows(); ++r) {
      for (size_t c = 0; c < out.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(out(r, c))) << KindName(kind);
      }
    }
  }
}

TEST(EdgePreprocess, ExtremeMagnitudes) {
  Matrix train = {{1e300, 1e-300}, {-1e300, 2e-300}, {5e299, 3e-300}};
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    auto preprocessor = MakePreprocessor(kind);
    Matrix out = preprocessor->FitTransform(train);
    for (size_t r = 0; r < out.rows(); ++r) {
      for (size_t c = 0; c < out.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(out(r, c)))
            << KindName(kind) << " (" << r << "," << c << ")";
      }
    }
  }
}

// Every preprocessor, fit on three degenerate shapes — a constant column
// among varying ones, a single row, and all-identical rows — must either
// succeed with fully finite output or surface a typed failure through the
// checked pipeline path. No aborts, no NaN output.
void ExpectFiniteFitTransform(const Matrix& train, const char* shape) {
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    auto preprocessor = MakePreprocessor(kind);
    Matrix out = preprocessor->FitTransform(train);
    ASSERT_EQ(out.rows(), train.rows()) << KindName(kind) << " on " << shape;
    for (size_t r = 0; r < out.rows(); ++r) {
      for (size_t c = 0; c < out.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(out(r, c)))
            << KindName(kind) << " on " << shape << " (" << r << "," << c
            << ")";
      }
    }
  }
}

TEST(EdgePreprocess, ConstantColumnEveryPreprocessor) {
  Matrix train = {{1.0, 5.0, -2.0},
                  {2.0, 5.0, 0.5},
                  {3.0, 5.0, 1.5},
                  {4.0, 5.0, -0.5}};  // column 1 constant.
  ExpectFiniteFitTransform(train, "constant-column");
}

TEST(EdgePreprocess, SingleRowEveryPreprocessor) {
  Matrix train = {{1.5, -2.0, 0.0, 7.0}};
  ExpectFiniteFitTransform(train, "single-row");
}

TEST(EdgePreprocess, AllIdenticalRowsEveryPreprocessor) {
  Matrix row = {{2.5, -1.0, 0.0}};
  Matrix train(6, 3);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 3; ++c) train(r, c) = row(0, c);
  }
  ExpectFiniteFitTransform(train, "identical-rows");
}

TEST(EdgePreprocess, CheckedPipelineReportsNonFiniteInput) {
  // NaN in the input propagates through scale-only transforms; the checked
  // pipeline path must report it as a typed OutOfRange failure instead of
  // handing NaN features to a model.
  Matrix train = {{1.0, std::nan("")}, {2.0, 3.0}, {3.0, 4.0}};
  Matrix valid = {{1.5, 2.0}};
  PipelineSpec spec =
      PipelineSpec::FromKinds({PreprocessorKind::kMaxAbsScaler});
  Result<TransformedPair> out = CheckedFitTransformPair(spec, train, valid);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange);
}

TEST(EdgePreprocess, CheckedPipelineReportsDegenerateTransform) {
  // Binarizer with a threshold above every value collapses the matrix to
  // all zeros: a degenerate transform, reported as InvalidArgument.
  Matrix train = {{1.0, 2.0}, {3.0, 4.0}, {0.5, 1.5}};
  Matrix valid = {{2.0, 2.0}};
  PreprocessorConfig binarizer =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  binarizer.threshold = 100.0;
  PipelineSpec spec;
  spec.steps.push_back(binarizer);
  Result<TransformedPair> out = CheckedFitTransformPair(spec, train, valid);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeEvaluator, TinyBudgetFractionKeepsOneRowPerClass) {
  // budget_fraction far below 1/rows: the stratified subsample must still
  // contain at least one row of each class, so training cannot see an
  // empty or single-class sample.
  SyntheticSpec spec;
  spec.name = "tinyfrac";
  spec.rows = 50;
  spec.cols = 3;
  spec.num_classes = 4;
  spec.seed = 86;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(86);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 5;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  for (double fraction : {0.01, 0.02, 0.05}) {
    EvalRequest request;
    request.pipeline =
        PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
    request.budget_fraction = fraction;
    Evaluation evaluation = evaluator.Evaluate(request);
    EXPECT_FALSE(evaluation.failed()) << "fraction " << fraction << ": "
                                      << evaluation.status.ToString();
    EXPECT_GE(evaluation.accuracy, 0.0);
    EXPECT_LE(evaluation.accuracy, 1.0);
  }
}

TEST(EdgeModels, TrainingWithOneFeature) {
  Matrix features = {{0.0}, {1.0}, {2.0}, {10.0}, {11.0}, {12.0}};
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  for (ModelKind kind : {ModelKind::kLogisticRegression,
                         ModelKind::kXgboost, ModelKind::kMlp}) {
    auto model = MakeClassifier(ModelConfig::Defaults(kind));
    model->Train(features, labels, 2);
    EXPECT_EQ(model->PredictBatch(features).size(), 6u)
        << ModelKindName(kind);
  }
}

TEST(EdgeModels, AllSameLabelStillPredicts) {
  Matrix features = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  std::vector<int> labels = {1, 1, 1};
  for (ModelKind kind : {ModelKind::kLogisticRegression,
                         ModelKind::kXgboost, ModelKind::kMlp}) {
    auto model = MakeClassifier(ModelConfig::Defaults(kind));
    model->Train(features, labels, 2);
    for (int prediction : model->PredictBatch(features)) {
      EXPECT_EQ(prediction, 1) << ModelKindName(kind);
    }
  }
}

TEST(EdgeModels, KnnWithKLargerThanData) {
  Matrix features = {{0.0}, {1.0}};
  std::vector<int> labels = {0, 1};
  KnnClassifier knn(25);  // k > n clamps to n.
  knn.Train(features, labels, 2);
  double q = 0.1;
  EXPECT_GE(knn.Predict(&q, 1), 0);
}

TEST(EdgeSearch, BudgetOfOneEvaluation) {
  SyntheticSpec spec;
  spec.name = "edge";
  spec.rows = 60;
  spec.cols = 3;
  spec.num_classes = 2;
  spec.seed = 81;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(81);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 10;
  for (const std::string& name : AllSearchAlgorithmNames()) {
    PipelineEvaluator evaluator(split.train, split.valid, model);
    auto algorithm = MakeSearchAlgorithm(name).value();
    SearchResult result = RunSearch(algorithm.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(1), 81});
    EXPECT_GE(result.num_evaluations, 1) << name;
    EXPECT_GE(result.best_accuracy, 0.0) << name;
  }
}

TEST(EdgeSearch, SingleOperatorAlphabet) {
  // A space with exactly one operator: everything still works, and every
  // pipeline is some repetition of it.
  SearchSpace space(
      {PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler)}, 3);
  Rng rng(82);
  for (int i = 0; i < 20; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    for (const PreprocessorConfig& step : pipeline.steps) {
      EXPECT_EQ(step.kind, PreprocessorKind::kStandardScaler);
    }
    pipeline = space.Mutate(pipeline, &rng);
    EXPECT_GE(pipeline.size(), 1u);
    EXPECT_LE(pipeline.size(), 3u);
  }
}

TEST(EdgeSearch, MaxLengthOnePipelines) {
  SearchSpace space = SearchSpace::Default(1);
  Rng rng(83);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(space.SampleUniform(&rng).size(), 1u);
    PipelineSpec mutated =
        space.Mutate(space.SampleUniform(&rng), &rng);
    EXPECT_EQ(mutated.size(), 1u);
  }
}

TEST(EdgeSearch, TwoStepWithSecondsBudgetTerminates) {
  SyntheticSpec spec;
  spec.name = "edge2";
  spec.rows = 80;
  spec.cols = 4;
  spec.num_classes = 2;
  spec.seed = 84;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(84);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 10;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  TwoStepConfig config;
  config.algorithm = "RS";
  config.inner_budget = Budget::Seconds(0.05);
  SearchResult result =
      RunTwoStep(config, &evaluator, ParameterSpace::LowCardinality(), {Budget::Seconds(0.2), 84});
  EXPECT_GT(result.num_evaluations, 0);
  EXPECT_LT(result.elapsed_seconds, 3.0);
}

TEST(EdgeCv, MinimumFoldsAndRows) {
  Dataset data;
  data.name = "cv";
  data.num_classes = 2;
  data.features = {{0.0}, {1.0}, {10.0}, {11.0}};
  data.labels = {0, 0, 1, 1};
  double accuracy = CrossValidationAccuracy(KnnClassifier(1), data, 2, 1);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(EdgeSuite, EveryFullSuiteEntryGeneratesAndValidates) {
  for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
    Dataset data = GenerateSynthetic(spec);
    Status status = data.Validate();
    EXPECT_TRUE(status.ok()) << spec.name << ": " << status.ToString();
    EXPECT_EQ(data.num_rows(), spec.rows) << spec.name;
    EXPECT_EQ(data.num_cols(), spec.cols) << spec.name;
  }
}

TEST(EdgeEvaluator, LongestPipelineOnWideData) {
  SyntheticSpec spec;
  spec.name = "wide";
  spec.family = SyntheticFamily::kSparseHighDim;
  spec.rows = 60;
  spec.cols = 200;
  spec.num_classes = 2;
  spec.seed = 85;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(85);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 5;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds(
      {PreprocessorKind::kBinarizer, PreprocessorKind::kMaxAbsScaler,
       PreprocessorKind::kMinMaxScaler, PreprocessorKind::kNormalizer,
       PreprocessorKind::kPowerTransformer,
       PreprocessorKind::kQuantileTransformer,
       PreprocessorKind::kStandardScaler});
  Evaluation evaluation = evaluator.Evaluate(request);
  EXPECT_GE(evaluation.accuracy, 0.0);
  EXPECT_LE(evaluation.accuracy, 1.0);
}

}  // namespace
}  // namespace autofp
