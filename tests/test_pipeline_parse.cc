#include "preprocess/pipeline_parse.h"

#include <gtest/gtest.h>

#include "core/search_space.h"
#include "util/random.h"

namespace autofp {
namespace {

TEST(PipelineParse, EmptyAndNoFp) {
  EXPECT_TRUE(ParsePipelineSpec("").value().empty());
  EXPECT_TRUE(ParsePipelineSpec("  ").value().empty());
  EXPECT_TRUE(ParsePipelineSpec("<no-FP>").value().empty());
}

TEST(PipelineParse, SingleDefaultStep) {
  Result<PipelineSpec> parsed = ParsePipelineSpec("StandardScaler");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().steps[0].kind, PreprocessorKind::kStandardScaler);
  EXPECT_TRUE(parsed.value().steps[0].with_mean);
}

TEST(PipelineParse, ChainWithWhitespaceVariants) {
  Result<PipelineSpec> parsed =
      ParsePipelineSpec("MinMaxScaler->Normalizer ->  Binarizer");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_EQ(parsed.value().steps[1].kind, PreprocessorKind::kNormalizer);
}

TEST(PipelineParse, Parameters) {
  Result<PipelineSpec> parsed = ParsePipelineSpec(
      "Binarizer(threshold=0.4) -> Normalizer(norm=l1) -> "
      "StandardScaler(with_mean=false) -> "
      "PowerTransformer(standardize=false) -> "
      "QuantileTransformer(n_quantiles=200, output_distribution=normal)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<PreprocessorConfig>& steps = parsed.value().steps;
  ASSERT_EQ(steps.size(), 5u);
  EXPECT_DOUBLE_EQ(steps[0].threshold, 0.4);
  EXPECT_EQ(steps[1].norm, NormKind::kL1);
  EXPECT_FALSE(steps[2].with_mean);
  EXPECT_FALSE(steps[3].standardize);
  EXPECT_EQ(steps[4].n_quantiles, 200);
  EXPECT_EQ(steps[4].output_distribution, OutputDistribution::kNormal);
}

TEST(PipelineParse, Errors) {
  EXPECT_FALSE(ParsePipelineSpec("RobustScaler").ok());
  EXPECT_FALSE(ParsePipelineSpec("Binarizer(foo=1)").ok());
  EXPECT_FALSE(ParsePipelineSpec("Binarizer(threshold=abc)").ok());
  EXPECT_FALSE(ParsePipelineSpec("Binarizer(threshold=0.2").ok());
  EXPECT_FALSE(ParsePipelineSpec("Normalizer(norm=l3)").ok());
  EXPECT_FALSE(ParsePipelineSpec("QuantileTransformer(n_quantiles=1)").ok());
  EXPECT_FALSE(ParsePipelineSpec("StandardScaler -> -> Binarizer").ok());
  EXPECT_FALSE(ParsePipelineSpec("MaxAbsScaler(threshold=1)").ok());
}

TEST(PipelineParse, RoundTripDefaultSpace) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(61);
  for (int i = 0; i < 200; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    Result<PipelineSpec> parsed = ParsePipelineSpec(pipeline.ToString());
    ASSERT_TRUE(parsed.ok()) << pipeline.ToString();
    EXPECT_TRUE(parsed.value() == pipeline) << pipeline.ToString();
  }
}

TEST(PipelineParse, RoundTripExtendedSpaces) {
  for (const ParameterSpace& parameters :
       {ParameterSpace::LowCardinality(), ParameterSpace::HighCardinality()}) {
    SearchSpace space = OneStepSpace(parameters, 5);
    Rng rng(62);
    for (int i = 0; i < 100; ++i) {
      PipelineSpec pipeline = space.SampleUniform(&rng);
      Result<PipelineSpec> parsed = ParsePipelineSpec(pipeline.ToString());
      ASSERT_TRUE(parsed.ok()) << pipeline.ToString();
      EXPECT_TRUE(parsed.value() == pipeline) << pipeline.ToString();
    }
  }
}

TEST(PipelineParse, ParsedPipelineIsRunnable) {
  Result<PipelineSpec> parsed = ParsePipelineSpec(
      "PowerTransformer -> MinMaxScaler -> Binarizer(threshold=0.5)");
  ASSERT_TRUE(parsed.ok());
  Matrix data = {{1.0, -2.0}, {3.0, 0.5}, {-1.0, 4.0}, {2.0, 2.0}};
  FittedPipeline fitted = FittedPipeline::Fit(parsed.value(), data);
  Matrix out = fitted.Transform(data);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_TRUE(out(r, c) == 0.0 || out(r, c) == 1.0);
    }
  }
}

}  // namespace
}  // namespace autofp
