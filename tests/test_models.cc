#include "ml/model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/knn.h"
#include "ml/lda.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace autofp {
namespace {

/// Linearly separable 2-class blobs.
Dataset Blobs(size_t n, int classes, uint64_t seed, double separation = 4.0) {
  SyntheticSpec spec;
  spec.name = "blobs";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = n;
  spec.cols = 6;
  spec.num_classes = classes;
  spec.seed = seed;
  spec.separation = separation;
  spec.label_noise = 0.0;
  return GenerateSynthetic(spec);
}

/// Scaled-to-unit version of the same blobs (kind to LR/MLP).
Dataset NormalizedBlobs(size_t n, int classes, uint64_t seed) {
  Dataset d = Blobs(n, classes, seed);
  for (size_t c = 0; c < d.num_cols(); ++c) {
    std::vector<double> column = d.features.Column(c);
    double mean = 0.0, sq = 0.0;
    for (double v : column) mean += v;
    mean /= column.size();
    for (double v : column) sq += (v - mean) * (v - mean);
    double stddev = std::sqrt(sq / column.size());
    if (stddev == 0.0) stddev = 1.0;
    for (double& v : column) v = (v - mean) / stddev;
    d.features.SetColumn(c, column);
  }
  return d;
}

TEST(Metrics, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

class DownstreamModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(DownstreamModels, LearnsSeparableBinary) {
  Dataset train = NormalizedBlobs(300, 2, 21);
  Dataset test = NormalizedBlobs(100, 2, 21);  // same distribution.
  auto model = MakeClassifier(ModelConfig::Defaults(GetParam()));
  model->Train(train.features, train.labels, 2);
  double accuracy = EvaluateAccuracy(*model, test.features, test.labels);
  EXPECT_GT(accuracy, 0.9) << ModelKindName(GetParam());
}

TEST_P(DownstreamModels, LearnsMultiClass) {
  Dataset train = NormalizedBlobs(400, 4, 22);
  auto model = MakeClassifier(ModelConfig::Defaults(GetParam()));
  model->Train(train.features, train.labels, 4);
  double accuracy = EvaluateAccuracy(*model, train.features, train.labels);
  EXPECT_GT(accuracy, 0.85) << ModelKindName(GetParam());
}

TEST_P(DownstreamModels, CloneIsIndependent) {
  Dataset train = NormalizedBlobs(100, 2, 23);
  auto model = MakeClassifier(ModelConfig::Defaults(GetParam()));
  auto clone = model->Clone();
  model->Train(train.features, train.labels, 2);
  // Clone was created before training: it must not be trained.
  clone->Train(train.features, train.labels, 2);
  EXPECT_EQ(clone->PredictBatch(train.features).size(), train.num_rows());
}

TEST_P(DownstreamModels, DeterministicTraining) {
  Dataset train = NormalizedBlobs(150, 3, 24);
  auto a = MakeClassifier(ModelConfig::Defaults(GetParam()));
  auto b = MakeClassifier(ModelConfig::Defaults(GetParam()));
  a->Train(train.features, train.labels, 3);
  b->Train(train.features, train.labels, 3);
  EXPECT_EQ(a->PredictBatch(train.features), b->PredictBatch(train.features));
}

INSTANTIATE_TEST_SUITE_P(Kinds, DownstreamModels,
                         ::testing::Values(ModelKind::kLogisticRegression,
                                           ModelKind::kXgboost,
                                           ModelKind::kMlp),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return ModelKindName(info.param);
                         });

TEST(LogisticRegression, ScaleSensitivity) {
  // The motivating property of the paper: LR trained on wildly-scaled
  // features underperforms LR trained on standardized features.
  Dataset raw = Blobs(400, 2, 25, 2.0);
  Dataset scaled = NormalizedBlobs(400, 2, 25);
  ModelConfig config = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  auto raw_model = MakeClassifier(config);
  auto scaled_model = MakeClassifier(config);
  raw_model->Train(raw.features, raw.labels, 2);
  scaled_model->Train(scaled.features, scaled.labels, 2);
  double raw_accuracy = EvaluateAccuracy(*raw_model, raw.features, raw.labels);
  double scaled_accuracy =
      EvaluateAccuracy(*scaled_model, scaled.features, scaled.labels);
  EXPECT_GT(scaled_accuracy, raw_accuracy + 0.03);
}

TEST(Gbdt, ScaleInvarianceOfTrees) {
  // Monotone per-feature rescaling should barely change GBDT accuracy.
  Dataset raw = Blobs(400, 2, 26, 2.0);
  Dataset scaled = NormalizedBlobs(400, 2, 26);
  ModelConfig config = ModelConfig::Defaults(ModelKind::kXgboost);
  auto raw_model = MakeClassifier(config);
  auto scaled_model = MakeClassifier(config);
  raw_model->Train(raw.features, raw.labels, 2);
  scaled_model->Train(scaled.features, scaled.labels, 2);
  double raw_accuracy = EvaluateAccuracy(*raw_model, raw.features, raw.labels);
  double scaled_accuracy =
      EvaluateAccuracy(*scaled_model, scaled.features, scaled.labels);
  EXPECT_NEAR(raw_accuracy, scaled_accuracy, 0.05);
}

TEST(Gbdt, MoreRoundsFitTighter) {
  Dataset train = NormalizedBlobs(300, 2, 27);
  ModelConfig small = ModelConfig::Defaults(ModelKind::kXgboost);
  small.xgb_rounds = 2;
  ModelConfig large = small;
  large.xgb_rounds = 40;
  auto small_model = MakeClassifier(small);
  auto large_model = MakeClassifier(large);
  small_model->Train(train.features, train.labels, 2);
  large_model->Train(train.features, train.labels, 2);
  EXPECT_GE(EvaluateAccuracy(*large_model, train.features, train.labels),
            EvaluateAccuracy(*small_model, train.features, train.labels));
}

TEST(Gbdt, TreeCountMatchesConfig) {
  Dataset binary = NormalizedBlobs(100, 2, 28);
  ModelConfig config = ModelConfig::Defaults(ModelKind::kXgboost);
  config.xgb_rounds = 5;
  GbdtClassifier model(config);
  model.Train(binary.features, binary.labels, 2);
  EXPECT_EQ(model.num_trees(), 5u);  // one tree per round (binary).
  Dataset multi = NormalizedBlobs(100, 3, 29);
  GbdtClassifier multi_model(config);
  multi_model.Train(multi.features, multi.labels, 3);
  EXPECT_EQ(multi_model.num_trees(), 15u);  // rounds * classes.
}

TEST(DecisionTree, PerfectlySplitsAxisAlignedData) {
  Matrix features = {{1.0}, {2.0}, {3.0}, {10.0}, {11.0}, {12.0}};
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  DecisionTreeClassifier tree;
  tree.Train(features, labels, 2);
  EXPECT_EQ(tree.depth(), 1);
  double v0 = 2.0, v1 = 11.5;
  EXPECT_EQ(tree.Predict(&v0, 1), 0);
  EXPECT_EQ(tree.Predict(&v1, 1), 1);
}

TEST(DecisionTree, DepthLimitRespected) {
  Dataset train = NormalizedBlobs(200, 2, 30);
  TreeConfig config;
  config.max_depth = 2;
  DecisionTreeClassifier tree(config);
  tree.Train(train.features, train.labels, 2);
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTree, PureNodeIsLeaf) {
  Matrix features = {{1.0}, {2.0}, {3.0}};
  std::vector<int> labels = {1, 1, 1};
  DecisionTreeClassifier tree;
  tree.Train(features, labels, 2);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(DecisionTreeRegressor, FitsStepFunction) {
  Matrix features = {{0.0}, {1.0}, {2.0}, {10.0}, {11.0}, {12.0}};
  std::vector<double> targets = {5.0, 5.0, 5.0, -3.0, -3.0, -3.0};
  DecisionTreeRegressor tree;
  tree.Train(features, targets);
  double lo = 1.0, hi = 11.0;
  EXPECT_DOUBLE_EQ(tree.Predict(&lo, 1), 5.0);
  EXPECT_DOUBLE_EQ(tree.Predict(&hi, 1), -3.0);
}

TEST(RandomForest, RegressionBeatsMeanBaseline) {
  Rng rng(31);
  Matrix features(200, 3);
  std::vector<double> targets(200);
  for (size_t r = 0; r < 200; ++r) {
    for (size_t c = 0; c < 3; ++c) features(r, c) = rng.Uniform(-1, 1);
    targets[r] = 2.0 * features(r, 0) - features(r, 1) +
                 0.1 * rng.Gaussian();
  }
  RandomForestRegressor forest;
  forest.Train(features, targets);
  double sse = 0.0, sse_mean = 0.0;
  double mean = 0.0;
  for (double t : targets) mean += t;
  mean /= targets.size();
  for (size_t r = 0; r < 200; ++r) {
    double prediction = forest.Predict(features.RowPtr(r), 3);
    sse += (prediction - targets[r]) * (prediction - targets[r]);
    sse_mean += (mean - targets[r]) * (mean - targets[r]);
  }
  EXPECT_LT(sse, 0.3 * sse_mean);
}

TEST(RandomForest, UncertaintyHigherOffDistribution) {
  Rng rng(32);
  Matrix features(150, 1);
  std::vector<double> targets(150);
  for (size_t r = 0; r < 150; ++r) {
    features(r, 0) = rng.Uniform(0.0, 1.0);
    targets[r] = std::sin(6.0 * features(r, 0));
  }
  RandomForestRegressor forest;
  forest.Train(features, targets);
  double inside = 0.5, outside = 5.0;
  auto p_in = forest.PredictWithUncertainty(&inside, 1);
  auto p_out = forest.PredictWithUncertainty(&outside, 1);
  EXPECT_GE(p_out.stddev, 0.0);
  EXPECT_TRUE(std::isfinite(p_in.mean));
}

TEST(Knn, OneNearestNeighborMemorizes) {
  Dataset train = NormalizedBlobs(100, 2, 33);
  KnnClassifier knn(1);
  knn.Train(train.features, train.labels, 2);
  EXPECT_DOUBLE_EQ(EvaluateAccuracy(knn, train.features, train.labels), 1.0);
}

TEST(Knn, MajorityVote) {
  Matrix features = {{0.0}, {0.1}, {0.2}, {5.0}};
  std::vector<int> labels = {0, 0, 0, 1};
  KnnClassifier knn(3);
  knn.Train(features, labels, 2);
  double query = 0.15;
  EXPECT_EQ(knn.Predict(&query, 1), 0);
}

TEST(NaiveBayes, SeparatesGaussians) {
  Dataset train = NormalizedBlobs(300, 2, 34);
  GaussianNaiveBayes nb;
  nb.Train(train.features, train.labels, 2);
  EXPECT_GT(EvaluateAccuracy(nb, train.features, train.labels), 0.9);
}

TEST(Lda, SeparatesGaussians) {
  Dataset train = NormalizedBlobs(300, 3, 35);
  LdaClassifier lda;
  lda.Train(train.features, train.labels, 3);
  EXPECT_GT(EvaluateAccuracy(lda, train.features, train.labels), 0.85);
}

TEST(Lda, HandlesCollinearFeatures) {
  // Duplicate column: covariance is singular without regularization.
  Rng rng(36);
  Matrix features(100, 2);
  std::vector<int> labels(100);
  for (size_t r = 0; r < 100; ++r) {
    double v = rng.Gaussian(r % 2 == 0 ? -2.0 : 2.0);
    features(r, 0) = v;
    features(r, 1) = v;  // exact copy.
    labels[r] = static_cast<int>(r % 2);
  }
  LdaClassifier lda;
  lda.Train(features, labels, 2);
  EXPECT_GT(EvaluateAccuracy(lda, features, labels), 0.9);
}

TEST(CrossValidation, ReasonableScoreAndDeterminism) {
  Dataset data = NormalizedBlobs(200, 2, 37);
  double a = CrossValidationAccuracy(KnnClassifier(3), data, 5, 1);
  double b = CrossValidationAccuracy(KnnClassifier(3), data, 5, 1);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.8);
  EXPECT_LE(a, 1.0);
}

TEST(ModelConfig, ToStringMentionsKind) {
  EXPECT_NE(ModelConfig::Defaults(ModelKind::kXgboost).ToString().find("XGB"),
            std::string::npos);
}

}  // namespace
}  // namespace autofp
