#include "preprocess/pipeline.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace autofp {
namespace {

Matrix RandomData(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      data(r, c) = rng.Gaussian(c * 10.0, c + 1.0);
    }
  }
  return data;
}

TEST(PipelineSpec, ToStringFormats) {
  PipelineSpec empty;
  EXPECT_EQ(empty.ToString(), "<no-FP>");
  PipelineSpec two = PipelineSpec::FromKinds(
      {PreprocessorKind::kMinMaxScaler, PreprocessorKind::kPowerTransformer});
  EXPECT_EQ(two.ToString(), "MinMaxScaler -> PowerTransformer");
}

TEST(PipelineSpec, EqualityAndKey) {
  PipelineSpec a = PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  PipelineSpec b = PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  PipelineSpec c = PipelineSpec::FromKinds({PreprocessorKind::kNormalizer});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
}

TEST(FittedPipeline, SequentialComposition) {
  // MinMax then Binarizer(0.5): values above the column midpoint -> 1.
  PipelineSpec spec;
  spec.steps.push_back(
      PreprocessorConfig::Defaults(PreprocessorKind::kMinMaxScaler));
  PreprocessorConfig binarizer =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  binarizer.threshold = 0.5;
  spec.steps.push_back(binarizer);

  Matrix data = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  FittedPipeline pipeline = FittedPipeline::Fit(spec, data);
  Matrix out = pipeline.Transform(data);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 0.0);  // 0.5 is not > 0.5.
  EXPECT_DOUBLE_EQ(out(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(out(4, 0), 1.0);
}

TEST(FittedPipeline, OrderMatters) {
  // StandardScaler -> Binarizer differs from Binarizer -> StandardScaler.
  Matrix data = RandomData(50, 2, 11);
  PipelineSpec ab = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kBinarizer});
  PipelineSpec ba = PipelineSpec::FromKinds(
      {PreprocessorKind::kBinarizer, PreprocessorKind::kStandardScaler});
  Matrix out_ab = FittedPipeline::Fit(ab, data).Transform(data);
  Matrix out_ba = FittedPipeline::Fit(ba, data).Transform(data);
  EXPECT_FALSE(out_ab == out_ba);
}

TEST(FittedPipeline, EmptyPipelineIsIdentity) {
  Matrix data = RandomData(10, 3, 12);
  PipelineSpec empty;
  Matrix out = FittedPipeline::Fit(empty, data).Transform(data);
  EXPECT_TRUE(out == data);
}

TEST(FitTransformPair, MatchesFitThenTransform) {
  Matrix train = RandomData(60, 3, 13);
  Matrix valid = RandomData(20, 3, 14);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kNormalizer});
  TransformedPair pair = FitTransformPair(spec, train, valid);
  FittedPipeline fitted = FittedPipeline::Fit(spec, train);
  EXPECT_TRUE(pair.train == fitted.Transform(train));
  EXPECT_TRUE(pair.valid == fitted.Transform(valid));
}

TEST(FitTransformPair, ValidStatisticsComeFromTrain) {
  // A MinMaxScaler fit on train maps valid values outside the train range
  // outside [0, 1] — proving no leakage of valid statistics.
  Matrix train = {{0.0}, {10.0}};
  Matrix valid = {{20.0}, {-10.0}};
  PipelineSpec spec =
      PipelineSpec::FromKinds({PreprocessorKind::kMinMaxScaler});
  TransformedPair pair = FitTransformPair(spec, train, valid);
  EXPECT_DOUBLE_EQ(pair.valid(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(pair.valid(1, 0), -1.0);
}

TEST(FitTransformPair, LongPipelineStaysFinite) {
  Matrix train = RandomData(80, 4, 15);
  Matrix valid = RandomData(30, 4, 16);
  // All 7 preprocessors chained (the maximum default pipeline length).
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kPowerTransformer,
       PreprocessorKind::kQuantileTransformer,
       PreprocessorKind::kStandardScaler, PreprocessorKind::kNormalizer,
       PreprocessorKind::kMinMaxScaler, PreprocessorKind::kMaxAbsScaler,
       PreprocessorKind::kBinarizer});
  TransformedPair pair = FitTransformPair(spec, train, valid);
  for (size_t r = 0; r < pair.valid.rows(); ++r) {
    for (size_t c = 0; c < pair.valid.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(pair.valid(r, c)));
      // Final Binarizer: outputs are 0/1.
      EXPECT_TRUE(pair.valid(r, c) == 0.0 || pair.valid(r, c) == 1.0);
    }
  }
}

TEST(FitTransformPair, RepeatedPreprocessorIsLegal) {
  // The paper's examples include pipelines like Normalizer -> Normalizer.
  Matrix train = RandomData(30, 3, 17);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kNormalizer, PreprocessorKind::kNormalizer});
  TransformedPair pair = FitTransformPair(spec, train, train);
  // Normalizer is idempotent: applying twice equals once.
  PipelineSpec once = PipelineSpec::FromKinds({PreprocessorKind::kNormalizer});
  TransformedPair pair_once = FitTransformPair(once, train, train);
  for (size_t r = 0; r < pair.train.rows(); ++r) {
    for (size_t c = 0; c < pair.train.cols(); ++c) {
      EXPECT_NEAR(pair.train(r, c), pair_once.train(r, c), 1e-12);
    }
  }
}

}  // namespace
}  // namespace autofp
