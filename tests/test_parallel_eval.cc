/// Tests of the batch evaluation engine: TransformCache LRU behaviour,
/// cached-vs-uncached evaluation equivalence, the CachingEvaluator result
/// cache, ParallelEvaluator ordering/determinism, EvaluateBatch bookkeeping
/// parity with sequential Evaluate, and fault semantics under concurrency.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval_cache.h"
#include "core/parallel_evaluator.h"
#include "core/search_framework.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "preprocess/transform_cache.h"
#include "search/random_search.h"

namespace autofp {
namespace {

const PreprocessorKind kAllKinds[] = {
    PreprocessorKind::kBinarizer,       PreprocessorKind::kMaxAbsScaler,
    PreprocessorKind::kMinMaxScaler,    PreprocessorKind::kNormalizer,
    PreprocessorKind::kPowerTransformer,
    PreprocessorKind::kQuantileTransformer,
    PreprocessorKind::kStandardScaler};

TrainValidSplit MakeSplit(uint64_t seed, size_t rows = 120, size_t cols = 4) {
  SyntheticSpec spec;
  spec.name = "parallel";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = rows;
  spec.cols = cols;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  return SplitTrainValid(data, 0.8, &rng);
}

ModelConfig FastLr() {
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 10;
  return model;
}

// ---------------------------------------------------------------------------
// TransformCache: LRU bounded by bytes.

/// Shared train/valid matrices filled with `fill`, the unit the cache now
/// stores (no TransformedPair copies cross the cache boundary).
std::pair<std::shared_ptr<const Matrix>, std::shared_ptr<const Matrix>>
MakeShared(size_t rows, double fill) {
  return {std::make_shared<const Matrix>(rows, 10, fill),
          std::make_shared<const Matrix>(rows / 2, 10, fill)};
}

void PutPair(TransformCache* cache, const std::string& key, size_t rows,
             double fill) {
  auto [train, valid] = MakeShared(rows, fill);
  cache->Put(key, std::move(train), std::move(valid));
}

TEST(TransformCache, StoresAndRetrieves) {
  TransformCache cache(1 << 20);
  EXPECT_FALSE(cache.Get("a"));
  PutPair(&cache, "a", 10, 1.5);
  CachedTransforms hit = cache.Get("a");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.train->rows(), 10u);
  EXPECT_DOUBLE_EQ((*hit.train)(0, 0), 1.5);
  TransformCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(TransformCache, HandsOutSharedReferencesNotCopies) {
  TransformCache cache(1 << 20);
  auto [train, valid] = MakeShared(10, 3.0);
  const Matrix* stored = train.get();
  cache.Put("a", std::move(train), std::move(valid));
  // Both hits observe the very matrix that was Put — a hit never copies.
  EXPECT_EQ(cache.Get("a").train.get(), stored);
  EXPECT_EQ(cache.Get("a").train.get(), stored);
}

TEST(TransformCache, EvictsLeastRecentlyUsed) {
  // Each entry's payload is 100x10 + 50x10 doubles = 12000 bytes; a 30000
  // byte budget holds two entries but not three.
  TransformCache cache(30000);
  PutPair(&cache, "a", 100, 1.0);
  PutPair(&cache, "b", 100, 2.0);
  ASSERT_TRUE(cache.Get("a"));  // refresh "a": now "b" is LRU.
  PutPair(&cache, "c", 100, 3.0);
  EXPECT_TRUE(cache.Get("a"));
  EXPECT_TRUE(cache.Get("c"));
  EXPECT_FALSE(cache.Get("b"));  // evicted.
  TransformCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes, stats.max_bytes);
}

TEST(TransformCache, OversizedEntryIsNeverStored) {
  TransformCache cache(1000);  // smaller than any 100-row payload.
  PutPair(&cache, "big", 100, 1.0);
  EXPECT_FALSE(cache.Get("big"));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(TransformCache, EvictionNeverInvalidatesHeldValues) {
  TransformCache cache(30000);
  PutPair(&cache, "a", 100, 7.0);
  CachedTransforms held = cache.Get("a");
  PutPair(&cache, "b", 100, 1.0);
  PutPair(&cache, "c", 100, 2.0);  // evicts "a".
  EXPECT_FALSE(cache.Get("a"));
  // The held shared reference still reads valid data.
  EXPECT_DOUBLE_EQ((*held.train)(99, 9), 7.0);
}

TEST(TransformCache, ClearResetsContentAndBytes) {
  TransformCache cache(1 << 20);
  PutPair(&cache, "a", 10, 1.0);
  PutPair(&cache, "b", 10, 2.0);
  cache.Clear();
  EXPECT_FALSE(cache.Get("a"));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(TransformCache, SharedEntriesReadConcurrentlyWhileEvicting) {
  // The shared-immutable contract under load (run under TSan via
  // scripts/check_tsan.sh): readers sum a cached entry's matrix while a
  // writer churns the cache past its byte budget, evicting and
  // re-inserting around them. Held references must stay valid and
  // constant throughout.
  TransformCache cache(30000);
  PutPair(&cache, "hot", 100, 5.0);
  std::atomic<bool> stop{false};
  std::atomic<long> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cache, &stop, &bad_reads] {
      while (!stop.load()) {
        CachedTransforms held = cache.Get("hot");
        if (!held) continue;  // currently evicted; writer will re-insert.
        for (size_t r = 0; r < held.train->rows(); ++r) {
          const double* row = held.train->RowPtr(r);
          for (size_t c = 0; c < held.train->cols(); ++c) {
            if (row[c] != 5.0) bad_reads.fetch_add(1);
          }
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    // Each filler insert evicts the LRU entry; re-insert "hot" so readers
    // keep finding it.
    PutPair(&cache, "filler" + std::to_string(i), 100, 1.0);
    PutPair(&cache, "hot", 100, 5.0);
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(bad_reads.load(), 0);
}

// ---------------------------------------------------------------------------
// Prefix-transform caching is invisible: cached evaluations are identical
// to uncached ones for every preprocessor and budget fraction.

TEST(PrefixCache, CachedEvaluationsIdenticalForAllPreprocessors) {
  TrainValidSplit split = MakeSplit(61);
  PipelineEvaluator plain(split.train, split.valid, FastLr());
  PipelineEvaluator cached(split.train, split.valid, FastLr());
  auto cache = std::make_shared<TransformCache>(64 << 20);
  cached.AttachTransformCache(cache);

  for (PreprocessorKind kind : kAllKinds) {
    for (double fraction : {0.25, 1.0}) {
      // Single step, then two chains sharing that step as a prefix, so the
      // second and third evaluations hit the cache.
      const std::vector<PipelineSpec> pipelines = {
          PipelineSpec::FromKinds({kind}),
          PipelineSpec::FromKinds({kind, PreprocessorKind::kStandardScaler}),
          PipelineSpec::FromKinds({kind, PreprocessorKind::kBinarizer}),
      };
      for (const PipelineSpec& pipeline : pipelines) {
        EvalRequest request;
        request.pipeline = pipeline;
        request.budget_fraction = fraction;
        request.seed = 0xFEEDu + static_cast<uint64_t>(kind);
        Evaluation uncached_eval = plain.Evaluate(request);
        Evaluation cached_eval = cached.Evaluate(request);
        EXPECT_DOUBLE_EQ(cached_eval.accuracy, uncached_eval.accuracy)
            << KindName(kind) << " fraction " << fraction;
        EXPECT_EQ(cached_eval.failure, uncached_eval.failure)
            << KindName(kind) << " fraction " << fraction;
        EXPECT_DOUBLE_EQ(cached_eval.budget_fraction,
                         uncached_eval.budget_fraction);
      }
    }
  }
  TransformCache::Stats stats = cache->stats();
  EXPECT_GT(stats.hits, 0) << "shared prefixes never hit the cache";
  EXPECT_GT(stats.insertions, 0);
}

TEST(PrefixCache, RepeatEvaluationHitsEveryPrefix) {
  TrainValidSplit split = MakeSplit(62);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  auto cache = std::make_shared<TransformCache>(64 << 20);
  evaluator.AttachTransformCache(cache);
  EvalRequest request;
  request.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler,
                               PreprocessorKind::kMinMaxScaler,
                               PreprocessorKind::kBinarizer});
  double first = evaluator.Evaluate(request).accuracy;
  long hits_before = cache->stats().hits;
  double second = evaluator.Evaluate(request).accuracy;
  EXPECT_DOUBLE_EQ(first, second);
  // The repeat probes the longest prefix first and finds the whole
  // pipeline cached: exactly one more hit, no new insertions.
  EXPECT_EQ(cache->stats().hits, hits_before + 1);
}

// ---------------------------------------------------------------------------
// CachingEvaluator: full-result memoization by request identity.

class CountingLandscape : public EvaluatorInterface {
 public:
  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    Evaluation evaluation;
    evaluation.pipeline = request.pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    double score = 0.3;
    for (const PreprocessorConfig& step : request.pipeline.steps) {
      if (step.kind == PreprocessorKind::kBinarizer) score += 0.15;
    }
    score -= 0.02 * static_cast<double>(request.pipeline.size());
    evaluation.accuracy = std::min(score, 1.0);
    return evaluation;
  }
  double BaselineAccuracy() override { return 0.3; }
  long calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> calls_{0};
};

TEST(CachingEvaluator, IdenticalRequestsHitWithoutInnerCall) {
  CountingLandscape inner;
  CachingEvaluator cached(&inner);
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  request.seed = 5;
  Evaluation first = cached.Evaluate(request);
  Evaluation second = cached.Evaluate(request);
  EXPECT_DOUBLE_EQ(first.accuracy, second.accuracy);
  EXPECT_EQ(inner.calls(), 1);
  EXPECT_EQ(cached.hits(), 1);
  EXPECT_EQ(cached.misses(), 1);
}

TEST(CachingEvaluator, DifferentFractionSeedOrDeadlineMiss) {
  CountingLandscape inner;
  CachingEvaluator cached(&inner);
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  cached.Evaluate(request);
  EvalRequest other_fraction = request;
  other_fraction.budget_fraction = 0.5;
  cached.Evaluate(other_fraction);
  EvalRequest other_seed = request;
  other_seed.seed = 99;
  cached.Evaluate(other_seed);
  EvalRequest other_deadline = request;
  other_deadline.deadline_seconds = 30.0;
  cached.Evaluate(other_deadline);
  EXPECT_EQ(inner.calls(), 4);
  EXPECT_EQ(cached.hits(), 0);
}

// ---------------------------------------------------------------------------
// ParallelEvaluator: ordering and equivalence to sequential evaluation.

TEST(ParallelEvaluator, ResultsArriveInRequestOrder) {
  CountingLandscape inner;
  ParallelEvaluator pool(&inner, 4);
  std::vector<EvalRequest> requests;
  for (int length = 1; length <= 7; ++length) {
    EvalRequest request;
    request.pipeline = PipelineSpec::FromKinds(std::vector<PreprocessorKind>(
        static_cast<size_t>(length), PreprocessorKind::kBinarizer));
    requests.push_back(request);
  }
  std::vector<Evaluation> results = pool.EvaluateAll(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].pipeline == requests[i].pipeline) << "slot " << i;
    Evaluation sequential = inner.Evaluate(requests[i]);
    EXPECT_DOUBLE_EQ(results[i].accuracy, sequential.accuracy);
  }
}

TEST(ParallelEvaluator, RealEvaluatorMatchesSequential) {
  TrainValidSplit split = MakeSplit(63);
  PipelineEvaluator sequential(split.train, split.valid, FastLr());
  PipelineEvaluator concurrent(split.train, split.valid, FastLr());
  ParallelEvaluator pool(&concurrent, 4);
  std::vector<EvalRequest> requests;
  for (PreprocessorKind kind : kAllKinds) {
    EvalRequest request;
    request.pipeline = PipelineSpec::FromKinds({kind});
    request.seed = static_cast<uint64_t>(kind) * 17 + 1;
    requests.push_back(request);
  }
  std::vector<Evaluation> results = pool.EvaluateAll(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].accuracy,
                     sequential.Evaluate(requests[i]).accuracy)
        << "slot " << i;
  }
}

// ---------------------------------------------------------------------------
// EvaluateBatch: bookkeeping parity with sequential Evaluate.

std::vector<std::pair<std::string, double>> HistoryMultiset(
    const std::vector<Evaluation>& history) {
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(history.size());
  for (const Evaluation& evaluation : history) {
    entries.emplace_back(evaluation.pipeline.Key(), evaluation.accuracy);
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(EvaluateBatch, BudgetCutoffIsASuffixOfNullopts) {
  CountingLandscape evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(5), 3});
  std::vector<PipelineSpec> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(space.SampleUniform(context.rng()));
  }
  std::vector<std::optional<double>> scores = context.EvaluateBatch(batch);
  ASSERT_EQ(scores.size(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(scores[i].has_value()) << i;
  for (int i = 5; i < 8; ++i) EXPECT_FALSE(scores[i].has_value()) << i;
  EXPECT_EQ(context.num_evaluations(), 5);
  EXPECT_TRUE(context.BudgetExhausted());
}

TEST(EvaluateBatch, DuplicatesEvaluateOnceButRecordEach) {
  CountingLandscape evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(10), 3});
  PipelineSpec pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  std::vector<PipelineSpec> batch(4, pipeline);
  std::vector<std::optional<double>> scores = context.EvaluateBatch(batch);
  EXPECT_EQ(evaluator.calls(), 1);  // deduplicated inside the batch.
  ASSERT_EQ(scores.size(), 4u);
  for (const std::optional<double>& score : scores) {
    ASSERT_TRUE(score.has_value());
    EXPECT_DOUBLE_EQ(*score, *scores[0]);
  }
  // Bookkeeping replays per slot: four history records, four budget units.
  EXPECT_EQ(context.num_evaluations(), 4);
  EXPECT_DOUBLE_EQ(context.evaluation_cost(), 4.0);
}

/// Pipelines starting with Normalizer fail permanently; everything else
/// succeeds. Thread-safe.
class PermanentFailLandscape : public CountingLandscape {
 public:
  using CountingLandscape::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    if (!request.pipeline.empty() &&
        request.pipeline.steps[0].kind == PreprocessorKind::kNormalizer) {
      Evaluation evaluation;
      evaluation.pipeline = request.pipeline;
      evaluation.budget_fraction = request.budget_fraction;
      evaluation.failure = EvalFailure::kNonFiniteOutput;
      evaluation.status = Status::OutOfRange("rigged non-finite");
      evaluation.accuracy = kPenaltyAccuracy;
      return evaluation;
    }
    return CountingLandscape::Evaluate(request);
  }
};

TEST(EvaluateBatch, InBatchQuarantineMatchesSequential) {
  PipelineSpec bad = PipelineSpec::FromKinds({PreprocessorKind::kNormalizer});
  PipelineSpec good = PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  SearchSpace space = SearchSpace::Default();

  PermanentFailLandscape batch_eval;
  SearchContext batch_context(&space, &batch_eval,
                              SearchOptions{Budget::Evaluations(10), 3});
  std::vector<PipelineSpec> batch = {bad, good, bad};
  batch_context.EvaluateBatch(batch);

  PermanentFailLandscape seq_eval;
  SearchContext seq_context(&space, &seq_eval,
                            SearchOptions{Budget::Evaluations(10), 3});
  for (const PipelineSpec& pipeline : batch) seq_context.Evaluate(pipeline);

  EXPECT_EQ(batch_context.num_failures(), seq_context.num_failures());
  EXPECT_EQ(batch_context.num_quarantined(), seq_context.num_quarantined());
  EXPECT_EQ(batch_context.num_quarantine_hits(),
            seq_context.num_quarantine_hits());
  EXPECT_DOUBLE_EQ(batch_context.evaluation_cost(),
                   seq_context.evaluation_cost());
  ASSERT_EQ(batch_context.history().size(), seq_context.history().size());
  for (size_t i = 0; i < batch_context.history().size(); ++i) {
    EXPECT_EQ(batch_context.history()[i].failure,
              seq_context.history()[i].failure)
        << "slot " << i;
    EXPECT_DOUBLE_EQ(batch_context.history()[i].accuracy,
                     seq_context.history()[i].accuracy);
  }
  EXPECT_EQ(batch_context.num_quarantine_hits(), 1);
}

TEST(EvaluateBatch, EmptyBatchIsANoOp) {
  CountingLandscape evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(10), 3});
  std::vector<std::optional<double>> scores = context.EvaluateBatch({});
  EXPECT_TRUE(scores.empty());
  EXPECT_EQ(evaluator.calls(), 0);
  EXPECT_EQ(context.num_evaluations(), 0);
  EXPECT_TRUE(context.history().empty());
  EXPECT_DOUBLE_EQ(context.evaluation_cost(), 0.0);
  EXPECT_FALSE(context.BudgetExhausted());
}

TEST(EvaluateBatch, AllQuarantinedBatchMatchesSequential) {
  PipelineSpec bad = PipelineSpec::FromKinds({PreprocessorKind::kNormalizer});
  SearchSpace space = SearchSpace::Default();

  PermanentFailLandscape batch_eval;
  SearchContext batch_context(&space, &batch_eval,
                              SearchOptions{Budget::Evaluations(20), 3});
  batch_context.Evaluate(bad);  // quarantines the pipeline.
  long calls_after_quarantine = batch_eval.calls();
  std::vector<PipelineSpec> batch(3, bad);
  std::vector<std::optional<double>> scores =
      batch_context.EvaluateBatch(batch);
  // Every slot is served from quarantine: no evaluator calls at all.
  EXPECT_EQ(batch_eval.calls(), calls_after_quarantine);
  ASSERT_EQ(scores.size(), 3u);
  for (const std::optional<double>& score : scores) {
    ASSERT_TRUE(score.has_value());
    EXPECT_DOUBLE_EQ(*score, kPenaltyAccuracy);
  }

  PermanentFailLandscape seq_eval;
  SearchContext seq_context(&space, &seq_eval,
                            SearchOptions{Budget::Evaluations(20), 3});
  seq_context.Evaluate(bad);
  for (const PipelineSpec& pipeline : batch) seq_context.Evaluate(pipeline);

  EXPECT_EQ(batch_eval.calls(), seq_eval.calls());
  EXPECT_EQ(batch_context.num_quarantine_hits(),
            seq_context.num_quarantine_hits());
  EXPECT_EQ(batch_context.num_failures(), seq_context.num_failures());
  EXPECT_DOUBLE_EQ(batch_context.evaluation_cost(),
                   seq_context.evaluation_cost());
  EXPECT_TRUE(HistoryMultiset(batch_context.history()) ==
              HistoryMultiset(seq_context.history()));
}

TEST(EvaluateBatch, AllDuplicateSpecsMatchSequential) {
  PipelineSpec pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kBinarizer,
                               PreprocessorKind::kStandardScaler});
  SearchSpace space = SearchSpace::Default();

  CountingLandscape batch_eval;
  SearchContext batch_context(&space, &batch_eval,
                              SearchOptions{Budget::Evaluations(20), 3});
  std::vector<PipelineSpec> batch(5, pipeline);
  batch_context.EvaluateBatch(batch);

  CountingLandscape seq_eval;
  SearchContext seq_context(&space, &seq_eval,
                            SearchOptions{Budget::Evaluations(20), 3});
  for (const PipelineSpec& spec : batch) seq_context.Evaluate(spec);

  // The batch path dedups the evaluator call but must replicate the
  // sequential path's per-slot bookkeeping exactly.
  EXPECT_EQ(batch_context.num_evaluations(), seq_context.num_evaluations());
  EXPECT_DOUBLE_EQ(batch_context.evaluation_cost(),
                   seq_context.evaluation_cost());
  EXPECT_EQ(batch_context.num_successes(), seq_context.num_successes());
  ASSERT_EQ(batch_context.history().size(), seq_context.history().size());
  for (size_t i = 0; i < batch_context.history().size(); ++i) {
    EXPECT_EQ(batch_context.history()[i].pipeline.Key(),
              seq_context.history()[i].pipeline.Key());
    EXPECT_DOUBLE_EQ(batch_context.history()[i].accuracy,
                     seq_context.history()[i].accuracy);
  }
  ASSERT_TRUE(batch_context.has_best());
  EXPECT_EQ(batch_context.best().pipeline.Key(),
            seq_context.best().pipeline.Key());
}

// ---------------------------------------------------------------------------
// Thread-count invariance: 4 workers produce the same search as 1.

TEST(ThreadInvariance, FourThreadSearchMatchesOneThread) {
  SearchSpace space = SearchSpace::Default();
  SearchResult results[2];
  std::vector<std::pair<std::string, double>> histories[2];
  const int thread_counts[2] = {1, 4};
  for (int variant = 0; variant < 2; ++variant) {
    CountingLandscape evaluator;
    RandomSearch rs(/*batch_size=*/8);
    SearchOptions options;
    options.budget = Budget::Evaluations(64);
    options.seed = 91;
    options.num_threads = thread_counts[variant];
    // Capture the history through a context-driving run.
    SearchContext context(&space, &evaluator, options);
    rs.Initialize(&context);
    while (!context.BudgetExhausted()) rs.Iterate(&context);
    histories[variant] = HistoryMultiset(context.history());
    ASSERT_TRUE(context.has_best());
    results[variant].best_pipeline = context.best().pipeline;
    results[variant].best_accuracy = context.best().accuracy;
  }
  EXPECT_TRUE(results[0].best_pipeline == results[1].best_pipeline);
  EXPECT_DOUBLE_EQ(results[0].best_accuracy, results[1].best_accuracy);
  ASSERT_EQ(histories[0].size(), histories[1].size());
  EXPECT_TRUE(histories[0] == histories[1]);
}

TEST(ThreadInvariance, RealEvaluatorWithCacheMatchesSingleThread) {
  // The full decorator chain (transform cache + result cache + pool)
  // reproduces the plain single-threaded search exactly.
  TrainValidSplit split = MakeSplit(64, /*rows=*/100);
  SearchSpace space = SearchSpace::Default();
  SearchResult plain, engine;
  {
    PipelineEvaluator evaluator(split.train, split.valid, FastLr());
    RandomSearch rs(/*batch_size=*/4);
    plain = RunSearch(&rs, &evaluator, space,
                      SearchOptions{Budget::Evaluations(12), 17});
  }
  {
    PipelineEvaluator evaluator(split.train, split.valid, FastLr());
    RandomSearch rs(/*batch_size=*/4);
    SearchOptions options{Budget::Evaluations(12), 17};
    options.num_threads = 4;
    options.cache_bytes = 32 << 20;
    engine = RunSearch(&rs, &evaluator, space, options);
  }
  EXPECT_TRUE(plain.best_pipeline == engine.best_pipeline);
  EXPECT_DOUBLE_EQ(plain.best_accuracy, engine.best_accuracy);
  EXPECT_EQ(plain.num_evaluations, engine.num_evaluations);
  EXPECT_EQ(engine.num_threads, 4);
  EXPECT_GT(engine.transform_cache_hits + engine.transform_cache_misses, 0);
}

// ---------------------------------------------------------------------------
// Fault semantics are unchanged under the parallel engine.

TEST(ParallelFaults, RetryAndQuarantineCountsMatchSequential) {
  SearchSpace space = SearchSpace::Default();
  long failures[2], retries[2], quarantined[2], quarantine_hits[2];
  std::vector<std::pair<std::string, double>> histories[2];
  const int thread_counts[2] = {1, 4};
  for (int variant = 0; variant < 2; ++variant) {
    PermanentFailLandscape inner;
    FaultInjectorConfig injector_config;
    injector_config.fault_rate = 0.3;
    injector_config.seed = 99;
    FaultInjectingEvaluator evaluator(&inner, injector_config);
    RandomSearch rs(/*batch_size=*/8);
    FaultPolicy policy;
    policy.max_retries = 3;
    SearchOptions options;
    options.budget = Budget::Evaluations(64);
    options.seed = 23;
    options.fault_policy = policy;
    options.num_threads = thread_counts[variant];
    SearchContext context(&space, &evaluator, options);
    rs.Initialize(&context);
    while (!context.BudgetExhausted()) rs.Iterate(&context);
    failures[variant] = context.num_failures();
    retries[variant] = context.num_retries();
    quarantined[variant] = context.num_quarantined();
    quarantine_hits[variant] = context.num_quarantine_hits();
    histories[variant] = HistoryMultiset(context.history());
  }
  EXPECT_GT(failures[0], 0);  // the injector actually fired.
  EXPECT_GT(retries[0], 0);
  EXPECT_EQ(failures[0], failures[1]);
  EXPECT_EQ(retries[0], retries[1]);
  EXPECT_EQ(quarantined[0], quarantined[1]);
  EXPECT_EQ(quarantine_hits[0], quarantine_hits[1]);
  EXPECT_TRUE(histories[0] == histories[1]);
}

// ---------------------------------------------------------------------------
// Scratch-aware evaluation: lending reusable buffers changes nothing about
// the results.

TEST(ScratchEval, ScratchAndScratchlessEvaluationsIdentical) {
  TrainValidSplit split = MakeSplit(65);
  PipelineEvaluator evaluator(split.train, split.valid, FastLr());
  TransformScratch scratch;
  for (PreprocessorKind kind : kAllKinds) {
    EvalRequest request;
    request.pipeline = PipelineSpec::FromKinds(
        {kind, PreprocessorKind::kStandardScaler});
    request.seed = EvalRequest::DeriveSeed(99, request.pipeline, 1.0, 1);
    Evaluation fresh = evaluator.Evaluate(request);
    // The same (dirty) scratch serves every evaluation in turn.
    Evaluation reused = evaluator.Evaluate(request, &scratch);
    EXPECT_DOUBLE_EQ(fresh.accuracy, reused.accuracy)
        << request.pipeline.ToString();
    EXPECT_EQ(fresh.failure, reused.failure);
  }
}

}  // namespace
}  // namespace autofp
