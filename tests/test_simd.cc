#include "util/simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/aligned.h"
#include "util/random.h"

namespace autofp {
namespace {

using simd::VecD;
using simd::VecIdx;

/// Bitwise equality — distinguishes +0.0 from -0.0 and compares NaN
/// payloads, which EXPECT_DOUBLE_EQ cannot.
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<uint64_t>(a) << " vs "
         << std::bit_cast<uint64_t>(b) << ")";
}

/// A value mix that exercises the edge cases the kernels care about:
/// signed zeros, denormal-adjacent magnitudes, exact ties.
std::vector<double> InterestingValues(Rng& rng, size_t n) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(0, 9)) {
      case 0: out[i] = 0.0; break;
      case 1: out[i] = -0.0; break;
      case 2: out[i] = rng.Uniform(-1e-300, 1e-300); break;
      case 3: out[i] = static_cast<double>(rng.UniformInt(-3, 3)); break;
      default: out[i] = rng.Uniform(-100.0, 100.0); break;
    }
  }
  return out;
}

TEST(Simd, BackendReportsConsistentLaneCount) {
  EXPECT_EQ(simd::kDoubleLanes, VecD::kLanes);
  if (simd::kEnabled) {
    EXPECT_GT(simd::kDoubleLanes, 1u);
  } else {
    EXPECT_EQ(simd::kDoubleLanes, 1u);
  }
}

TEST(Simd, ElementwiseOpsAreBitIdenticalToScalar) {
  Rng rng(42);
  const size_t lanes = VecD::kLanes;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a = InterestingValues(rng, lanes);
    std::vector<double> b = InterestingValues(rng, lanes);
    const VecD va = VecD::Load(a.data());
    const VecD vb = VecD::Load(b.data());
    for (size_t i = 0; i < lanes; ++i) {
      EXPECT_TRUE(BitEqual((va + vb).Lane(i), a[i] + b[i]));
      EXPECT_TRUE(BitEqual((va - vb).Lane(i), a[i] - b[i]));
      EXPECT_TRUE(BitEqual((va * vb).Lane(i), a[i] * b[i]));
      EXPECT_TRUE(BitEqual((va / vb).Lane(i), a[i] / b[i]));
      EXPECT_TRUE(BitEqual(va.Abs().Lane(i), std::fabs(a[i])));
      EXPECT_TRUE(
          BitEqual(va.Abs().Sqrt().Lane(i), std::sqrt(std::fabs(a[i]))));
    }
  }
}

TEST(Simd, SelectOnStrictComparisonMatchesScalarTieBehavior) {
  // The fit reductions update running min/max with Select on a STRICT
  // comparison, which must keep the incumbent on ties — including the
  // -0.0 == +0.0 tie, where Min/Max intrinsics would pick an operand by
  // position instead. This is what keeps fitted parameters bit-identical
  // to the scalar `if (value < min)` updates.
  const double pz = 0.0;
  const double nz = -0.0;
  const VecD incumbent = VecD::Set1(nz);
  const VecD value = VecD::Set1(pz);
  // Scalar reference: value < incumbent is false (0 < 0), keep incumbent.
  const VecD kept =
      VecD::Select(VecD::Gt(incumbent, value), value, incumbent);
  for (size_t i = 0; i < VecD::kLanes; ++i) {
    EXPECT_TRUE(BitEqual(kept.Lane(i), nz));
  }
  // And the mirror image for max.
  const VecD kept_max = VecD::Select(VecD::Gt(value, incumbent), value,
                                     incumbent);
  for (size_t i = 0; i < VecD::kLanes; ++i) {
    EXPECT_TRUE(BitEqual(kept_max.Lane(i), nz));
  }
}

TEST(Simd, UnalignedLoadsAndStoresWork) {
  // Matrix storage is 64-byte aligned but row pointers inside it are not
  // (odd column counts); every Load/Store must tolerate any offset.
  AlignedVector<double> buffer(VecD::kLanes * 4 + 8, 0.0);
  Rng rng(7);
  for (size_t offset = 0; offset < 8; ++offset) {
    std::vector<double> values = InterestingValues(rng, VecD::kLanes);
    std::copy(values.begin(), values.end(), buffer.begin() + offset);
    const VecD v = VecD::Load(buffer.data() + offset);
    double out[8 + 16] = {0};
    v.Store(out + offset);
    for (size_t i = 0; i < VecD::kLanes; ++i) {
      EXPECT_TRUE(BitEqual(out[offset + i], values[i]));
    }
  }
}

TEST(Simd, UpperAndLowerBoundMatchStdAlgorithms) {
  Rng rng(123);
  for (size_t n : {0u, 1u, 2u, 3u, 5u, 7u, 16u, 17u, 100u, 1000u}) {
    std::vector<double> table(n);
    for (double& x : table) x = std::round(rng.Uniform(-20.0, 20.0));
    std::sort(table.begin(), table.end());
    for (int trial = 0; trial < 200; ++trial) {
      // Half the probes are exact table entries so ties are exercised.
      const double value =
          (n > 0 && trial % 2 == 0)
              ? table[rng.UniformIndex(n)]
              : rng.Uniform(-25.0, 25.0);
      const size_t expected_upper = static_cast<size_t>(
          std::upper_bound(table.begin(), table.end(), value) -
          table.begin());
      const size_t expected_lower = static_cast<size_t>(
          std::lower_bound(table.begin(), table.end(), value) -
          table.begin());
      EXPECT_EQ(simd::UpperBoundIndex(table.data(), n, value),
                expected_upper)
          << "n=" << n << " value=" << value;
      EXPECT_EQ(simd::LowerBoundIndex(table.data(), n, value),
                expected_lower)
          << "n=" << n << " value=" << value;
    }
  }
}

TEST(Simd, VectorUpperBoundMatchesScalarPerLane) {
  Rng rng(321);
  for (size_t n : {1u, 2u, 3u, 8u, 17u, 1000u}) {
    std::vector<double> table(n);
    for (double& x : table) x = std::round(rng.Uniform(-20.0, 20.0));
    std::sort(table.begin(), table.end());
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<double> probes(VecD::kLanes);
      for (double& p : probes) p = rng.Uniform(-25.0, 25.0);
      const VecIdx result =
          simd::UpperBoundIndexV(table.data(), n, VecD::Load(probes.data()));
      for (size_t i = 0; i < VecD::kLanes; ++i) {
        EXPECT_EQ(static_cast<size_t>(result.Lane(i)),
                  simd::UpperBoundIndex(table.data(), n, probes[i]));
      }
    }
  }
}

TEST(Simd, GatherAndToDoubleMatchScalar) {
  std::vector<double> table = {10.0, 11.0, 12.0, 13.0, 14.0,
                               15.0, 16.0, 17.0};
  for (int64_t start = 0; start + static_cast<int64_t>(VecD::kLanes) <= 8;
       ++start) {
    const VecD gathered =
        simd::Gather(table.data(), VecIdx::Set1(start));
    const VecD converted = simd::ToDouble(VecIdx::Set1(start));
    for (size_t i = 0; i < VecD::kLanes; ++i) {
      EXPECT_TRUE(BitEqual(gathered.Lane(i), table[start]));
      EXPECT_TRUE(
          BitEqual(converted.Lane(i), static_cast<double>(start)));
    }
  }
}

TEST(Simd, DotIsWithinToleranceOfScalarAndExactWhenForced) {
  Rng rng(99);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 16u, 17u, 64u, 1000u}) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-1.0, 1.0);
      b[i] = rng.Uniform(-1.0, 1.0);
    }
    const double reference = simd::DotScalar(a.data(), b.data(), n);
    const double vectorized = simd::Dot(a.data(), b.data(), n);
    // Reassociated sum: tolerance-gated, never bit-compared.
    EXPECT_NEAR(vectorized, reference,
                1e-12 * (1.0 + static_cast<double>(n)));
    simd::ScopedForceScalar forced(true);
    EXPECT_TRUE(
        BitEqual(simd::Dot(a.data(), b.data(), n), reference));
  }
}

TEST(Simd, AxpyIsBitIdenticalToScalarLoop) {
  Rng rng(1234);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u, 64u,
                   1000u}) {
    std::vector<double> x = InterestingValues(rng, n);
    std::vector<double> y = InterestingValues(rng, n);
    const double alpha = rng.Uniform(-2.0, 2.0);
    std::vector<double> expected = y;
    for (size_t i = 0; i < n; ++i) expected[i] += alpha * x[i];
    std::vector<double> actual = y;
    simd::Axpy(alpha, x.data(), actual.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(actual[i], expected[i])) << "n=" << n;
    }
  }
}

TEST(Simd, FillWritesEveryElement) {
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 17u, 64u}) {
    std::vector<double> buffer(n + 1, -1.0);
    simd::Fill(buffer.data(), 2.5, n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(buffer[i], 2.5);
    EXPECT_EQ(buffer[n], -1.0);  // no overrun.
  }
}

TEST(Simd, ForceScalarFlagIsScopedAndRestored) {
  const bool initial = simd::ForceScalarEnabled();
  {
    simd::ScopedForceScalar outer(true);
    EXPECT_TRUE(simd::ForceScalarEnabled());
    {
      simd::ScopedForceScalar inner(false);
      EXPECT_FALSE(simd::ForceScalarEnabled());
    }
    EXPECT_TRUE(simd::ForceScalarEnabled());
  }
  EXPECT_EQ(simd::ForceScalarEnabled(), initial);
}

}  // namespace
}  // namespace autofp
