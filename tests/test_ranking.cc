#include "core/ranking.h"

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Ranks, SimpleOrdering) {
  // accuracies 0.9, 0.7, 0.8 -> ranks 1, 3, 2.
  std::vector<double> ranks = RanksWithTies({0.9, 0.7, 0.8});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(Ranks, TiesShareMinimumRank) {
  std::vector<double> ranks = RanksWithTies({0.8, 0.9, 0.8, 0.7});
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);  // competition rank skips.
}

TEST(Ranks, AllTied) {
  std::vector<double> ranks = RanksWithTies({0.5, 0.5, 0.5});
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Ranks, SingleEntry) {
  std::vector<double> ranks = RanksWithTies({0.4});
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
}

TEST(AverageRanks, FiltersByImprovement) {
  std::vector<ScenarioScores> scenarios = {
      // Qualifies: best (0.9) beats baseline 0.5 by 0.4.
      {"s1", 0.5, {0.9, 0.8}},
      // Does not qualify: best improvement is 0.005 < 0.015.
      {"s2", 0.9, {0.905, 0.7}},
  };
  size_t qualified = 0;
  std::vector<double> ranks = AverageRanks(scenarios, 0.015, &qualified);
  EXPECT_EQ(qualified, 1u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
}

TEST(AverageRanks, AveragesAcrossScenarios) {
  std::vector<ScenarioScores> scenarios = {
      {"s1", 0.0, {0.9, 0.8}},  // algorithm 0 wins.
      {"s2", 0.0, {0.6, 0.7}},  // algorithm 1 wins.
  };
  std::vector<double> ranks = AverageRanks(scenarios, 0.0);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
}

TEST(AverageRanks, NoQualifiedScenariosYieldsZeros) {
  std::vector<ScenarioScores> scenarios = {{"s", 0.99, {0.5, 0.4}}};
  size_t qualified = 7;
  std::vector<double> ranks = AverageRanks(scenarios, 0.015, &qualified);
  EXPECT_EQ(qualified, 0u);
  EXPECT_DOUBLE_EQ(ranks[0], 0.0);
}

TEST(AverageRanksDeath, InconsistentWidthsAbort) {
  std::vector<ScenarioScores> scenarios = {{"a", 0.0, {0.5, 0.4}},
                                           {"b", 0.0, {0.5}}};
  EXPECT_DEATH(AverageRanks(scenarios, 0.0), "inconsistent");
}

}  // namespace
}  // namespace autofp
