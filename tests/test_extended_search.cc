#include "search/two_step.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"

namespace autofp {
namespace {

PipelineEvaluator MakeEvaluator(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "ext";
  spec.family = SyntheticFamily::kThresholdCoded;
  spec.rows = 220;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = seed;
  spec.separation = 3.0;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 30;
  return PipelineEvaluator(split.train, split.valid, model);
}

TEST(OneStep, RunsOnLowCardinalitySpace) {
  PipelineEvaluator evaluator = MakeEvaluator(71);
  SearchResult result =
      RunOneStep("PBT", &evaluator, ParameterSpace::LowCardinality(), {Budget::Evaluations(30), 3}, /*max_pipeline_length=*/4);
  EXPECT_EQ(result.algorithm, "OneStep(PBT)");
  EXPECT_EQ(result.num_evaluations, 30);
  EXPECT_GE(result.best_accuracy, result.baseline_accuracy - 0.05);
}

TEST(OneStep, PipelineStepsComeFromExtendedAlphabet) {
  PipelineEvaluator evaluator = MakeEvaluator(72);
  SearchResult result =
      RunOneStep("RS", &evaluator, ParameterSpace::LowCardinality(), {Budget::Evaluations(20), 4}, 4);
  ParameterSpace parameters = ParameterSpace::LowCardinality();
  for (const PreprocessorConfig& step : result.best_pipeline.steps) {
    if (step.kind == PreprocessorKind::kBinarizer) {
      bool allowed = false;
      for (double t : parameters.binarizer_thresholds) {
        if (t == step.threshold) allowed = true;
      }
      EXPECT_TRUE(allowed);
    }
  }
}

TEST(TwoStep, RespectsTotalEvaluationBudget) {
  PipelineEvaluator evaluator = MakeEvaluator(73);
  TwoStepConfig config;
  config.algorithm = "RS";
  config.inner_budget = Budget::Evaluations(10);
  config.max_pipeline_length = 4;
  SearchResult result =
      RunTwoStep(config, &evaluator, ParameterSpace::LowCardinality(), {Budget::Evaluations(35), 5});
  EXPECT_EQ(result.algorithm, "TwoStep(RS)");
  EXPECT_EQ(result.num_evaluations, 35);  // 10+10+10+5.
}

TEST(TwoStep, BestOverRoundsIsReturned) {
  PipelineEvaluator evaluator = MakeEvaluator(74);
  TwoStepConfig config;
  config.algorithm = "RS";
  config.inner_budget = Budget::Evaluations(8);
  SearchResult result =
      RunTwoStep(config, &evaluator, ParameterSpace::LowCardinality(), {Budget::Evaluations(32), 6});
  // Re-evaluating the returned pipeline reproduces the reported accuracy.
  PipelineEvaluator check = MakeEvaluator(74);
  EvalRequest rescore;
  rescore.pipeline = result.best_pipeline;
  EXPECT_NEAR(check.Evaluate(rescore).accuracy, result.best_accuracy, 1e-12);
}

TEST(TwoStep, WorksOnHighCardinalitySpace) {
  PipelineEvaluator evaluator = MakeEvaluator(75);
  TwoStepConfig config;
  config.algorithm = "PBT";
  config.inner_budget = Budget::Evaluations(10);
  config.max_pipeline_length = 4;
  SearchResult result =
      RunTwoStep(config, &evaluator, ParameterSpace::HighCardinality(), {Budget::Evaluations(30), 7});
  EXPECT_EQ(result.num_evaluations, 30);
  EXPECT_GE(result.best_accuracy, 0.0);
}

TEST(OneStepVsTwoStep, HighCardinalityOneStepIsQuantileHeavy) {
  // Structural check of the Figure 9 mechanism: One-step on the
  // high-cardinality space overwhelmingly explores QuantileTransformer.
  PipelineEvaluator evaluator = MakeEvaluator(76);
  SearchResult one_step =
      RunOneStep("RS", &evaluator, ParameterSpace::HighCardinality(), {Budget::Evaluations(15), 8}, 4);
  size_t quantile_steps = 0, total_steps = 0;
  for (const PreprocessorConfig& step : one_step.best_pipeline.steps) {
    ++total_steps;
    if (step.kind == PreprocessorKind::kQuantileTransformer) ++quantile_steps;
  }
  EXPECT_GT(total_steps, 0u);
  // Not asserting all steps are quantile (best-of-15 may luck out), but
  // the sampled alphabet is ~99.3% QuantileTransformer variants.
  SearchSpace space = OneStepSpace(ParameterSpace::HighCardinality());
  EXPECT_GT(space.num_operators(), 4000u);
}

}  // namespace
}  // namespace autofp
