#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Csv, ParseSimple) {
  Result<CsvTable> table = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value().header.empty());
  EXPECT_EQ(table.value().values.rows(), 2u);
  EXPECT_DOUBLE_EQ(table.value().values(1, 1), 4.0);
}

TEST(Csv, ParseHeader) {
  Result<CsvTable> table = ParseCsv("a,b\n1,2\n", /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().header.size(), 2u);
  EXPECT_EQ(table.value().header[0], "a");
  EXPECT_EQ(table.value().values.rows(), 1u);
}

TEST(Csv, ParseNegativeAndScientific) {
  Result<CsvTable> table = ParseCsv("-1.5,2e3\n", false);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table.value().values(0, 0), -1.5);
  EXPECT_DOUBLE_EQ(table.value().values(0, 1), 2000.0);
}

TEST(Csv, ParseCrLf) {
  Result<CsvTable> table = ParseCsv("1,2\r\n3,4\r\n", false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().values.rows(), 2u);
}

TEST(Csv, EmptyContentYieldsEmptyTable) {
  Result<CsvTable> table = ParseCsv("", false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value().values.empty());
}

TEST(Csv, NonNumericCellFails) {
  Result<CsvTable> table = ParseCsv("1,apple\n", false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(Csv, RaggedRowFails) {
  Result<CsvTable> table = ParseCsv("1,2\n3\n", false);
  ASSERT_FALSE(table.ok());
}

TEST(Csv, MissingFileFails) {
  Result<CsvTable> table = ReadCsv("/nonexistent/file.csv", false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

TEST(Csv, WriteThenReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/autofp_csv_roundtrip.csv";
  Matrix values = {{1.5, -2.0}, {3.0, 4.25}};
  ASSERT_TRUE(WriteCsv(path, {"x", "y"}, values).ok());
  Result<CsvTable> table = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().header[1], "y");
  EXPECT_TRUE(table.value().values == values);
  std::remove(path.c_str());
}

TEST(Status, ToStringIncludesCode) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_NE(s.ToString().find("NotFound"), std::string::npos);
  EXPECT_NE(s.ToString().find("thing"), std::string::npos);
}

TEST(ResultType, ValueAndStatus) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTypeDeath, ValueOfErrorAborts) {
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_DEATH(err.value(), "CHECK failed");
}

}  // namespace
}  // namespace autofp
