#include "core/fp_growth.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace autofp {
namespace {

size_t SupportOf(const std::vector<FrequentItemset>& itemsets,
                 const std::vector<int>& items) {
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (const FrequentItemset& itemset : itemsets) {
    if (itemset.items == sorted) return itemset.support;
  }
  return 0;
}

TEST(FpGrowth, ClassicExample) {
  // Transactions from the textbook FP-growth example shape.
  std::vector<std::vector<int>> transactions = {
      {1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3}, {2, 3}, {1, 3},
      {1, 2, 3, 5}, {1, 2, 3}};
  std::vector<FrequentItemset> itemsets = FpGrowth(transactions, 2);
  EXPECT_EQ(SupportOf(itemsets, {1}), 6u);
  EXPECT_EQ(SupportOf(itemsets, {2}), 7u);
  EXPECT_EQ(SupportOf(itemsets, {1, 2}), 4u);
  EXPECT_EQ(SupportOf(itemsets, {1, 3}), 4u);
  EXPECT_EQ(SupportOf(itemsets, {1, 2, 5}), 2u);
  EXPECT_EQ(SupportOf(itemsets, {2, 5}), 2u);
  // {4} has support 2; {3,4} support 0 (below min support, absent).
  EXPECT_EQ(SupportOf(itemsets, {4}), 2u);
  EXPECT_EQ(SupportOf(itemsets, {3, 4}), 0u);
}

TEST(FpGrowth, MinSupportFilters) {
  std::vector<std::vector<int>> transactions = {{1, 2}, {1, 2}, {1, 3}};
  std::vector<FrequentItemset> at_two = FpGrowth(transactions, 2);
  EXPECT_EQ(SupportOf(at_two, {1, 2}), 2u);
  EXPECT_EQ(SupportOf(at_two, {3}), 0u);
  std::vector<FrequentItemset> at_three = FpGrowth(transactions, 3);
  EXPECT_EQ(SupportOf(at_three, {1}), 3u);
  EXPECT_EQ(SupportOf(at_three, {1, 2}), 0u);
}

TEST(FpGrowth, DuplicatesWithinTransactionIgnored) {
  std::vector<std::vector<int>> transactions = {{1, 1, 1}, {1}};
  std::vector<FrequentItemset> itemsets = FpGrowth(transactions, 2);
  EXPECT_EQ(SupportOf(itemsets, {1}), 2u);
}

TEST(FpGrowth, EmptyTransactionsYieldNothing) {
  EXPECT_TRUE(FpGrowth({}, 1).empty());
  EXPECT_TRUE(FpGrowth({{}, {}}, 1).empty());
}

TEST(FpGrowth, SortedBySupportDescending) {
  std::vector<std::vector<int>> transactions = {
      {1}, {1}, {1}, {2}, {2}, {1, 2}};
  std::vector<FrequentItemset> itemsets = FpGrowth(transactions, 1);
  for (size_t i = 1; i < itemsets.size(); ++i) {
    EXPECT_GE(itemsets[i - 1].support, itemsets[i].support);
  }
}

TEST(FpGrowth, ExhaustiveAgainstBruteForce) {
  // Randomized cross-check against a brute-force counter.
  std::vector<std::vector<int>> transactions;
  unsigned state = 12345;
  auto next = [&state]() {
    state = state * 1103515245 + 12345;
    return (state >> 16) & 0x7fff;
  };
  for (int t = 0; t < 40; ++t) {
    std::vector<int> transaction;
    for (int item = 0; item < 5; ++item) {
      if (next() % 2 == 0) transaction.push_back(item);
    }
    transactions.push_back(transaction);
  }
  const size_t min_support = 8;
  std::vector<FrequentItemset> itemsets = FpGrowth(transactions, min_support);
  // Brute force over all 31 non-empty subsets of {0..4}.
  for (int mask = 1; mask < 32; ++mask) {
    std::vector<int> items;
    for (int item = 0; item < 5; ++item) {
      if (mask & (1 << item)) items.push_back(item);
    }
    size_t support = 0;
    for (const std::vector<int>& transaction : transactions) {
      bool contains_all = true;
      for (int item : items) {
        if (std::find(transaction.begin(), transaction.end(), item) ==
            transaction.end()) {
          contains_all = false;
          break;
        }
      }
      support += contains_all;
    }
    size_t mined = SupportOf(itemsets, items);
    if (support >= min_support) {
      EXPECT_EQ(mined, support) << "mask " << mask;
    } else {
      EXPECT_EQ(mined, 0u) << "mask " << mask;
    }
  }
}

}  // namespace
}  // namespace autofp
