#include "util/matrix.h"

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 2.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, ReadWrite) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowPtrMatchesIndexing) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const double* row = m.RowPtr(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(Matrix, Column) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<double> col = m.Column(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[2], 6.0);
}

TEST(Matrix, SetColumn) {
  Matrix m(2, 2, 0.0);
  m.SetColumn(0, {9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, SelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix selected = m.SelectRows({2, 0});
  ASSERT_EQ(selected.rows(), 2u);
  EXPECT_DOUBLE_EQ(selected(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(selected(1, 1), 2.0);
}

TEST(Matrix, SelectRowsAllowsDuplicates) {
  Matrix m = {{1, 2}, {3, 4}};
  Matrix selected = m.SelectRows({1, 1, 1});
  ASSERT_EQ(selected.rows(), 3u);
  EXPECT_DOUBLE_EQ(selected(2, 0), 3.0);
}

TEST(Matrix, AppendRows) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}, {5, 6}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
}

TEST(Matrix, AppendRowsToEmpty) {
  Matrix a;
  Matrix b = {{3, 4}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 1u);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Matrix, Equality) {
  Matrix a = {{1, 2}};
  Matrix b = {{1, 2}};
  Matrix c = {{1, 3}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixDeath, OutOfBoundsAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "CHECK failed");
  EXPECT_DEATH(m(0, 2), "CHECK failed");
}

TEST(MatrixDeath, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

}  // namespace
}  // namespace autofp
