#include "util/matrix.h"

#include <utility>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 2.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, ReadWrite) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowPtrMatchesIndexing) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const double* row = m.RowPtr(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(Matrix, Column) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<double> col = m.Column(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[2], 6.0);
}

TEST(Matrix, SetColumn) {
  Matrix m(2, 2, 0.0);
  m.SetColumn(0, {9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, SelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix selected = m.SelectRows({2, 0});
  ASSERT_EQ(selected.rows(), 2u);
  EXPECT_DOUBLE_EQ(selected(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(selected(1, 1), 2.0);
}

TEST(Matrix, SelectRowsAllowsDuplicates) {
  Matrix m = {{1, 2}, {3, 4}};
  Matrix selected = m.SelectRows({1, 1, 1});
  ASSERT_EQ(selected.rows(), 3u);
  EXPECT_DOUBLE_EQ(selected(2, 0), 3.0);
}

TEST(Matrix, AppendRows) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}, {5, 6}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
}

TEST(Matrix, AppendRowsToEmpty) {
  Matrix a;
  Matrix b = {{3, 4}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 1u);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Matrix, AppendRowsMoveIntoEmptyAdoptsStorage) {
  Matrix a;
  Matrix b = {{3, 4}, {5, 6}};
  const double* storage = b.RowPtr(0);
  a.AppendRows(std::move(b));
  ASSERT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.RowPtr(0), storage);  // adopted, not copied
  EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
}

TEST(Matrix, AppendRowsMoveIntoNonEmptyCopies) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}};
  a.AppendRows(std::move(b));
  ASSERT_EQ(a.rows(), 2u);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
}

TEST(Matrix, ResizeKeepsCapacityWhenShrinking) {
  Matrix m(4, 3, 1.0);
  const double* storage = m.RowPtr(0);
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.RowPtr(0), storage);  // no reallocation on shrink
  m.Resize(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.RowPtr(0), storage);  // regrow within old capacity
}

TEST(Matrix, ResizeChangesShape) {
  Matrix m;
  m.Resize(2, 5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 5u);
  m(1, 4) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 4), 7.0);
}

TEST(Matrix, SelectRowsIntoMatchesSelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix out(9, 9, -1.0);  // dirty destination of the wrong shape
  m.SelectRowsInto({2, 0, 2}, &out);
  EXPECT_TRUE(out == m.SelectRows({2, 0, 2}));
}

TEST(Matrix, SelectRowsIntoReusesCapacity) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix out;
  m.SelectRowsInto({0, 1, 2}, &out);
  const double* storage = out.RowPtr(0);
  m.SelectRowsInto({1, 0}, &out);
  ASSERT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.RowPtr(0), storage);  // smaller selection reuses buffer
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
}

TEST(MatrixDeath, SelectRowsIntoSelfAborts) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_DEATH(m.SelectRowsInto({0}, &m), "CHECK failed");
}

TEST(Matrix, Equality) {
  Matrix a = {{1, 2}};
  Matrix b = {{1, 2}};
  Matrix c = {{1, 3}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixDeath, OutOfBoundsAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "CHECK failed");
  EXPECT_DEATH(m(0, 2), "CHECK failed");
}

TEST(MatrixDeath, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

}  // namespace
}  // namespace autofp
