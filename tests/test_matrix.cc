#include "util/matrix.h"

#include <utility>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructWithFill) {
  Matrix m(3, 4, 2.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 2.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, ReadWrite) {
  Matrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -3.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowPtrMatchesIndexing) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  const double* row = m.RowPtr(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(Matrix, Column) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  std::vector<double> col = m.Column(1);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 2.0);
  EXPECT_DOUBLE_EQ(col[2], 6.0);
}

TEST(Matrix, SetColumn) {
  Matrix m(2, 2, 0.0);
  m.SetColumn(0, {9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, SelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix selected = m.SelectRows({2, 0});
  ASSERT_EQ(selected.rows(), 2u);
  EXPECT_DOUBLE_EQ(selected(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(selected(1, 1), 2.0);
}

TEST(Matrix, SelectRowsAllowsDuplicates) {
  Matrix m = {{1, 2}, {3, 4}};
  Matrix selected = m.SelectRows({1, 1, 1});
  ASSERT_EQ(selected.rows(), 3u);
  EXPECT_DOUBLE_EQ(selected(2, 0), 3.0);
}

TEST(Matrix, AppendRows) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}, {5, 6}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
}

TEST(Matrix, AppendRowsToEmpty) {
  Matrix a;
  Matrix b = {{3, 4}};
  a.AppendRows(b);
  ASSERT_EQ(a.rows(), 1u);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
}

TEST(Matrix, AppendRowsMoveIntoEmptyAdoptsStorage) {
  Matrix a;
  Matrix b = {{3, 4}, {5, 6}};
  const double* storage = b.RowPtr(0);
  a.AppendRows(std::move(b));
  ASSERT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.RowPtr(0), storage);  // adopted, not copied
  EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
}

TEST(Matrix, AppendRowsMoveIntoNonEmptyCopies) {
  Matrix a = {{1, 2}};
  Matrix b = {{3, 4}};
  a.AppendRows(std::move(b));
  ASSERT_EQ(a.rows(), 2u);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
}

TEST(Matrix, ResizeKeepsCapacityWhenShrinking) {
  Matrix m(4, 3, 1.0);
  const double* storage = m.RowPtr(0);
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.RowPtr(0), storage);  // no reallocation on shrink
  m.Resize(4, 3);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.RowPtr(0), storage);  // regrow within old capacity
}

TEST(Matrix, ResizeChangesShape) {
  Matrix m;
  m.Resize(2, 5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 5u);
  m(1, 4) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 4), 7.0);
}

TEST(Matrix, SelectRowsIntoMatchesSelectRows) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix out(9, 9, -1.0);  // dirty destination of the wrong shape
  m.SelectRowsInto({2, 0, 2}, &out);
  EXPECT_TRUE(out == m.SelectRows({2, 0, 2}));
}

TEST(Matrix, SelectRowsIntoReusesCapacity) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix out;
  m.SelectRowsInto({0, 1, 2}, &out);
  const double* storage = out.RowPtr(0);
  m.SelectRowsInto({1, 0}, &out);
  ASSERT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.RowPtr(0), storage);  // smaller selection reuses buffer
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
}

TEST(MatrixDeath, SelectRowsIntoSelfAborts) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_DEATH(m.SelectRowsInto({0}, &m), "CHECK failed");
}

TEST(Matrix, Equality) {
  Matrix a = {{1, 2}};
  Matrix b = {{1, 2}};
  Matrix c = {{1, 3}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixDeath, OutOfBoundsAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m(2, 0), "CHECK failed");
  EXPECT_DEATH(m(0, 2), "CHECK failed");
}

// --- Layouts ----------------------------------------------------------------

TEST(MatrixLayout, AssignWithLayoutTransposesStorageNotMeaning) {
  Matrix row_major = {{1, 2, 3}, {4, 5, 6}};
  Matrix col_major;
  col_major.AssignWithLayout(row_major, Matrix::Layout::kColMajor);
  EXPECT_EQ(col_major.layout(), Matrix::Layout::kColMajor);
  ASSERT_EQ(col_major.rows(), 2u);
  ASSERT_EQ(col_major.cols(), 3u);
  // Logical indexing is layout-independent...
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(col_major(r, c), row_major(r, c));
    }
  }
  // ...and so is equality.
  EXPECT_TRUE(col_major == row_major);
  // Storage really is transposed: columns are contiguous.
  EXPECT_DOUBLE_EQ(col_major.ColPtr(1)[0], 2.0);
  EXPECT_DOUBLE_EQ(col_major.ColPtr(1)[1], 5.0);
}

TEST(MatrixLayout, RoundTripThroughLayoutsIsLossless) {
  Matrix original(37, 11);
  for (size_t r = 0; r < original.rows(); ++r) {
    for (size_t c = 0; c < original.cols(); ++c) {
      original(r, c) = static_cast<double>(r * 100 + c);
    }
  }
  Matrix staged;
  staged.AssignWithLayout(original, Matrix::Layout::kColMajor);
  Matrix back;
  back.AssignWithLayout(staged, Matrix::Layout::kRowMajor);
  EXPECT_EQ(back.layout(), Matrix::Layout::kRowMajor);
  EXPECT_TRUE(back == original);
}

TEST(MatrixLayout, ColumnSpanStridesMatchLayout) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix::ConstColumnSpan row_major_col = std::as_const(m).Col(1);
  EXPECT_EQ(row_major_col.rows, 3u);
  EXPECT_DOUBLE_EQ(row_major_col[0], 2.0);
  EXPECT_DOUBLE_EQ(row_major_col[2], 6.0);

  Matrix cm;
  cm.AssignWithLayout(m, Matrix::Layout::kColMajor);
  Matrix::ConstColumnSpan col_major_col = std::as_const(cm).Col(1);
  EXPECT_EQ(col_major_col.stride, 1u);  // contiguous down the column
  EXPECT_DOUBLE_EQ(col_major_col[0], 2.0);
  EXPECT_DOUBLE_EQ(col_major_col[2], 6.0);
}

TEST(MatrixLayout, ColumnAccessorsWorkOnBothLayouts) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  Matrix cm;
  cm.AssignWithLayout(m, Matrix::Layout::kColMajor);
  EXPECT_EQ(cm.Column(0), m.Column(0));
  cm.SetColumn(0, {9.0, 8.0, 7.0});
  EXPECT_DOUBLE_EQ(cm(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(cm(1, 1), 4.0);  // other column untouched
}

TEST(MatrixDeath, WrongLayoutPointerAccessAborts) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_DEATH(m.ColPtr(0), "CHECK failed");
  Matrix cm;
  cm.AssignWithLayout(m, Matrix::Layout::kColMajor);
  EXPECT_DEATH(cm.RowPtr(0), "CHECK failed");
}

// --- Borrowed views ---------------------------------------------------------

TEST(MatrixView, WrapConstRowMajorIsZeroCopy) {
  const double storage[] = {1, 2, 3, 4, 5, 6};
  const Matrix view = Matrix::WrapConstRowMajor(storage, 2, 3, nullptr);
  EXPECT_TRUE(view.borrowed());
  EXPECT_EQ(view.Raw(), storage);
  EXPECT_DOUBLE_EQ(view(1, 2), 6.0);
  EXPECT_EQ(view.RowPtr(1), storage + 3);
}

TEST(MatrixView, CopyingAViewMaterializesOwnedStorage) {
  const double storage[] = {1, 2, 3, 4};
  const Matrix view = Matrix::WrapConstRowMajor(storage, 2, 2, nullptr);
  Matrix copy = view;
  EXPECT_FALSE(copy.borrowed());
  EXPECT_NE(copy.Raw(), storage);
  EXPECT_TRUE(copy == view);
  copy(0, 0) = 99.0;  // owned copies are mutable
  EXPECT_DOUBLE_EQ(view(0, 0), 1.0);
}

TEST(MatrixView, BackingKeepsStorageAlive) {
  auto owned = std::make_shared<std::vector<double>>(
      std::vector<double>{1, 2, 3, 4});
  const double* raw = owned->data();
  const Matrix view = Matrix::WrapConstRowMajor(
      raw, 2, 2, std::shared_ptr<const void>(owned, owned->data()));
  owned.reset();  // the view's backing still holds the vector
  EXPECT_DOUBLE_EQ(view(1, 1), 4.0);
}

TEST(MatrixDeath, MutatingABorrowedMatrixAborts) {
  const double storage[] = {1, 2, 3, 4};
  Matrix view = Matrix::WrapConstRowMajor(storage, 2, 2, nullptr);
  EXPECT_DEATH(view(0, 0) = 5.0, "borrowed");
  EXPECT_DEATH(view.MutableRaw(), "borrowed");
  EXPECT_DEATH(view.data(), "borrowed");
}

TEST(MatrixDeath, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

}  // namespace
}  // namespace autofp
