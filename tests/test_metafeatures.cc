#include "metafeatures/metafeatures.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/random.h"

namespace autofp {
namespace {

Dataset SmallDataset(uint64_t seed = 91) {
  SyntheticSpec spec;
  spec.name = "mf";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 150;
  spec.cols = 8;
  spec.num_classes = 3;
  spec.seed = seed;
  spec.separation = 3.0;
  return GenerateSynthetic(spec);
}

TEST(MetaFeatures, VectorHasFortyEntriesMatchingNames) {
  MetaFeatures mf;
  EXPECT_EQ(mf.ToVector().size(), 40u);
  EXPECT_EQ(MetaFeatures::Names().size(), 40u);
}

TEST(MetaFeatures, SimpleShapeFeatures) {
  Dataset d = SmallDataset();
  MetaFeatures mf = ComputeMetaFeatures(d);
  EXPECT_DOUBLE_EQ(mf.number_of_features, 8.0);
  EXPECT_DOUBLE_EQ(mf.number_of_classes, 3.0);
  EXPECT_NEAR(mf.log_number_of_features, std::log(8.0), 1e-12);
  EXPECT_NEAR(mf.dataset_ratio, 8.0 / 150.0, 1e-12);
  EXPECT_NEAR(mf.inverse_dataset_ratio, 150.0 / 8.0, 1e-12);
  EXPECT_NEAR(mf.log_dataset_ratio, std::log(8.0 / 150.0), 1e-12);
}

TEST(MetaFeatures, NoMissingValuesInSyntheticData) {
  MetaFeatures mf = ComputeMetaFeatures(SmallDataset());
  EXPECT_DOUBLE_EQ(mf.number_of_missing_values, 0.0);
  EXPECT_DOUBLE_EQ(mf.percentage_of_missing_values, 0.0);
  EXPECT_DOUBLE_EQ(mf.number_of_instances_with_missing_values, 0.0);
}

TEST(MetaFeatures, DetectsMissingValues) {
  Dataset d = SmallDataset();
  d.features(0, 0) = std::nan("");
  d.features(0, 1) = std::nan("");
  d.features(5, 0) = std::nan("");
  MetaFeatures mf = ComputeMetaFeatures(d);
  EXPECT_DOUBLE_EQ(mf.number_of_missing_values, 3.0);
  EXPECT_DOUBLE_EQ(mf.number_of_features_with_missing_values, 2.0);
  EXPECT_DOUBLE_EQ(mf.number_of_instances_with_missing_values, 2.0);
}

TEST(MetaFeatures, ClassProbabilitiesSumToOne) {
  MetaFeatures mf = ComputeMetaFeatures(SmallDataset());
  EXPECT_NEAR(mf.class_probability_mean * 3.0, 1.0, 1e-12);
  EXPECT_GE(mf.class_probability_max, mf.class_probability_mean);
  EXPECT_LE(mf.class_probability_min, mf.class_probability_mean);
}

TEST(MetaFeatures, ClassEntropyOfBalancedData) {
  SyntheticSpec spec;
  spec.name = "balanced";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 400;
  spec.cols = 4;
  spec.num_classes = 2;
  spec.seed = 92;
  spec.label_noise = 0.0;
  Dataset d = GenerateSynthetic(spec);
  MetaFeatures mf = ComputeMetaFeatures(d);
  EXPECT_NEAR(mf.class_entropy, std::log(2.0), 0.02);
}

TEST(MetaFeatures, SkewDetectsSkewedFamily) {
  SyntheticSpec spec;
  spec.name = "skewed";
  spec.family = SyntheticFamily::kSkewed;
  spec.rows = 300;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = 93;
  MetaFeatures skewed = ComputeMetaFeatures(GenerateSynthetic(spec));
  MetaFeatures normal = ComputeMetaFeatures(SmallDataset());
  EXPECT_GT(skewed.skewness_mean, normal.skewness_mean + 0.5);
}

TEST(MetaFeatures, LandmarkersInUnitRangeAndInformative) {
  Dataset d = SmallDataset();
  MetaFeatures mf = ComputeMetaFeatures(d);
  for (double landmark :
       {mf.landmark_1nn, mf.landmark_random_node, mf.landmark_decision_node,
        mf.landmark_decision_tree, mf.landmark_naive_bayes,
        mf.landmark_lda}) {
    EXPECT_GE(landmark, 0.0);
    EXPECT_LE(landmark, 1.0);
  }
  // Full decision tree should beat a random single-feature stump on
  // well-separated blobs.
  EXPECT_GE(mf.landmark_decision_tree, mf.landmark_random_node);
}

TEST(MetaFeatures, PcaFractionWithinBounds) {
  MetaFeatures mf = ComputeMetaFeatures(SmallDataset());
  EXPECT_GT(mf.pca_fraction_components_95, 0.0);
  EXPECT_LE(mf.pca_fraction_components_95, 1.0);
}

TEST(MetaFeatures, PcaConcentratedVarianceNeedsFewComponents) {
  // One dominant direction: 95% variance in ~1 component.
  Dataset d;
  d.name = "concentrated";
  d.num_classes = 2;
  Rng rng(94);
  d.features = Matrix(200, 6);
  d.labels.resize(200);
  for (size_t r = 0; r < 200; ++r) {
    double driver = rng.Gaussian(0.0, 100.0);
    for (size_t c = 0; c < 6; ++c) {
      d.features(r, c) = driver + rng.Gaussian(0.0, 0.01);
    }
    d.labels[r] = driver > 0 ? 1 : 0;
  }
  MetaFeatures mf = ComputeMetaFeatures(d);
  EXPECT_LE(mf.pca_fraction_components_95, 1.0 / 6.0 + 1e-9);
}

TEST(MetaFeatures, DeterministicForSeed) {
  Dataset d = SmallDataset();
  MetaFeatureOptions options;
  options.seed = 5;
  std::vector<double> a = ComputeMetaFeatures(d, options).ToVector();
  std::vector<double> b = ComputeMetaFeatures(d, options).ToVector();
  EXPECT_EQ(a, b);
}

TEST(MetaFeatures, LargeDatasetIsSubsampled) {
  SyntheticSpec spec;
  spec.name = "large";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 6000;
  spec.cols = 5;
  spec.num_classes = 2;
  spec.seed = 95;
  Dataset d = GenerateSynthetic(spec);
  MetaFeatureOptions options;
  options.max_rows = 400;  // forces the subsample path.
  MetaFeatures mf = ComputeMetaFeatures(d, options);
  EXPECT_GT(mf.landmark_decision_tree, 0.5);
}

TEST(MetaFeatures, HighDimensionalPcaCapped) {
  SyntheticSpec spec;
  spec.name = "highdim";
  spec.family = SyntheticFamily::kSparseHighDim;
  spec.rows = 120;
  spec.cols = 300;
  spec.num_classes = 2;
  spec.seed = 96;
  Dataset d = GenerateSynthetic(spec);
  MetaFeatureOptions options;
  options.max_pca_features = 64;  // cap far below 300 columns.
  MetaFeatures mf = ComputeMetaFeatures(d, options);
  EXPECT_TRUE(std::isfinite(mf.pca_skewness_first_pc));
  EXPECT_TRUE(std::isfinite(mf.pca_kurtosis_first_pc));
}

}  // namespace
}  // namespace autofp
