#include "automl/hpo.h"
#include "automl/tpot_fp.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"

namespace autofp {
namespace {

TrainValidSplit MakeSplit(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "automl";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 240;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  return SplitTrainValid(data, 0.8, &rng);
}

TEST(TpotFp, SpaceHasFivePreprocessorsWithoutPowerOrQuantile) {
  SearchSpace space = TpotFpSpace();
  EXPECT_EQ(space.num_operators(), 5u);
  for (const PreprocessorConfig& op : space.operators()) {
    EXPECT_NE(op.kind, PreprocessorKind::kPowerTransformer);
    EXPECT_NE(op.kind, PreprocessorKind::kQuantileTransformer);
  }
}

TEST(TpotFp, RunsWithinBudget) {
  TrainValidSplit split = MakeSplit(81);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 30;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  SearchResult result =
      RunTpotFp(TpotFpConfig{}, &evaluator, Budget::Evaluations(40), 1);
  EXPECT_EQ(result.algorithm, "TPOT-FP");
  EXPECT_EQ(result.num_evaluations, 40);
  // Every step of the winner must come from the restricted alphabet.
  for (const PreprocessorConfig& step : result.best_pipeline.steps) {
    EXPECT_NE(step.kind, PreprocessorKind::kPowerTransformer);
    EXPECT_NE(step.kind, PreprocessorKind::kQuantileTransformer);
  }
}

TEST(TpotFp, Deterministic) {
  TrainValidSplit split = MakeSplit(82);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kXgboost);
  model.xgb_rounds = 10;
  PipelineEvaluator evaluator_a(split.train, split.valid, model);
  PipelineEvaluator evaluator_b(split.train, split.valid, model);
  SearchResult a =
      RunTpotFp(TpotFpConfig{}, &evaluator_a, Budget::Evaluations(25), 4);
  SearchResult b =
      RunTpotFp(TpotFpConfig{}, &evaluator_b, Budget::Evaluations(25), 4);
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy);
}

class HpoModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(HpoModels, SearchNeverWorseThanDefault) {
  TrainValidSplit split = MakeSplit(83);
  HpoResult result = RunHpoSearch(GetParam(), split.train, split.valid,
                                  Budget::Evaluations(12), 2);
  EXPECT_GE(result.best_accuracy, result.default_accuracy);
  EXPECT_EQ(result.num_evaluations, 12);
  EXPECT_EQ(result.best_config.kind, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, HpoModels,
                         ::testing::Values(ModelKind::kLogisticRegression,
                                           ModelKind::kXgboost,
                                           ModelKind::kMlp),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           return ModelKindName(info.param);
                         });

TEST(Hpo, SampledConfigsWithinBounds) {
  Rng rng(84);
  for (int i = 0; i < 100; ++i) {
    ModelConfig config = SampleModelConfig(ModelKind::kXgboost, &rng);
    EXPECT_GE(config.xgb_rounds, 10);
    EXPECT_LE(config.xgb_rounds, 80);
    EXPECT_GE(config.xgb_max_depth, 2);
    EXPECT_LE(config.xgb_max_depth, 8);
    EXPECT_GE(config.xgb_eta, 0.05);
    EXPECT_LE(config.xgb_eta, 0.5);
  }
}

TEST(Hpo, MutationKeepsKindAndBounds) {
  Rng rng(85);
  ModelConfig config = SampleModelConfig(ModelKind::kMlp, &rng);
  for (int i = 0; i < 100; ++i) {
    config = MutateModelConfig(config, &rng);
    EXPECT_EQ(config.kind, ModelKind::kMlp);
    EXPECT_GE(config.mlp_hidden, 8);
    EXPECT_LE(config.mlp_hidden, 96);
  }
}

}  // namespace
}  // namespace autofp
