#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"
#include "search/bohb.h"
#include "search/hyperband.h"

namespace autofp {
namespace {

PipelineEvaluator MakeEvaluator(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "bandit";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 260;
  spec.cols = 5;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 20;
  return PipelineEvaluator(split.train, split.valid, model);
}

/// Runs exactly one bracket and returns the per-fraction evaluation counts.
std::map<double, int> BracketProfile(Hyperband* algorithm, uint64_t seed) {
  PipelineEvaluator evaluator = MakeEvaluator(seed);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(500), seed});
  algorithm->Initialize(&context);
  algorithm->Iterate(&context);
  std::map<double, int> counts;
  for (const Evaluation& evaluation : context.history()) {
    counts[evaluation.budget_fraction] += 1;
  }
  return counts;
}

TEST(Hyperband, FirstBracketIsMostAggressive) {
  // eta=3, min_fraction=1/9 -> s_max=2; the first bracket starts 9
  // configurations at fraction 1/9, keeps 3 at 1/3, keeps 1 at 1.0.
  Hyperband::Config config;
  config.eta = 3.0;
  config.min_fraction = 1.0 / 9.0;
  Hyperband hyperband(config);
  std::map<double, int> counts = BracketProfile(&hyperband, 11);
  ASSERT_EQ(counts.size(), 3u);
  auto it = counts.begin();
  EXPECT_NEAR(it->first, 1.0 / 9.0, 1e-9);
  EXPECT_EQ(it->second, 9);
  ++it;
  EXPECT_NEAR(it->first, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(it->second, 3);
  ++it;
  EXPECT_NEAR(it->first, 1.0, 1e-9);
  EXPECT_EQ(it->second, 1);
}

TEST(Hyperband, SuccessiveHalvingKeepsTheBest) {
  Hyperband::Config config;
  config.eta = 3.0;
  config.min_fraction = 1.0 / 3.0;
  Hyperband hyperband(config);
  PipelineEvaluator evaluator = MakeEvaluator(12);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(100), 12});
  hyperband.Initialize(&context);
  hyperband.Iterate(&context);  // bracket s=1: 2*3=6 configs? n=ceil(2/2*3)=3.
  // The configurations promoted to full budget must be among the best of
  // the first rung (by their partial-budget score).
  std::vector<const Evaluation*> partial, full;
  for (const Evaluation& evaluation : context.history()) {
    if (evaluation.budget_fraction < 1.0) {
      partial.push_back(&evaluation);
    } else {
      full.push_back(&evaluation);
    }
  }
  ASSERT_FALSE(partial.empty());
  ASSERT_FALSE(full.empty());
  double best_partial = 0.0;
  for (const Evaluation* evaluation : partial) {
    best_partial = std::max(best_partial, evaluation->accuracy);
  }
  // The promoted pipeline is the partial-rung winner.
  bool promoted_winner = false;
  for (const Evaluation* evaluation : full) {
    for (const Evaluation* p : partial) {
      if (p->accuracy == best_partial &&
          p->pipeline == evaluation->pipeline) {
        promoted_winner = true;
      }
    }
  }
  EXPECT_TRUE(promoted_winner);
}

TEST(Hyperband, BracketsCycleThroughS) {
  Hyperband::Config config;
  config.eta = 3.0;
  config.min_fraction = 1.0 / 9.0;
  Hyperband hyperband(config);
  PipelineEvaluator evaluator = MakeEvaluator(13);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(1000), 13});
  hyperband.Initialize(&context);
  // Three brackets: s=2 (min fraction 1/9), s=1 (1/3), s=0 (only 1.0).
  hyperband.Iterate(&context);
  size_t after_first = context.history().size();
  hyperband.Iterate(&context);
  size_t after_second = context.history().size();
  hyperband.Iterate(&context);
  std::set<double> fractions_third;
  for (size_t i = after_second; i < context.history().size(); ++i) {
    fractions_third.insert(context.history()[i].budget_fraction);
  }
  // Bracket s=0 runs everything at full budget.
  EXPECT_EQ(fractions_third.size(), 1u);
  EXPECT_DOUBLE_EQ(*fractions_third.begin(), 1.0);
  std::set<double> fractions_second;
  for (size_t i = after_first; i < after_second; ++i) {
    fractions_second.insert(context.history()[i].budget_fraction);
  }
  EXPECT_EQ(fractions_second.size(), 2u);  // 1/3 and 1.0.
}

TEST(Hyperband, MinFractionRespected) {
  Hyperband::Config config;
  config.eta = 3.0;
  config.min_fraction = 0.2;
  Hyperband hyperband(config);
  PipelineEvaluator evaluator = MakeEvaluator(14);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(60), 14});
  hyperband.Initialize(&context);
  for (int i = 0; i < 4 && !context.BudgetExhausted(); ++i) {
    hyperband.Iterate(&context);
  }
  for (const Evaluation& evaluation : context.history()) {
    EXPECT_GE(evaluation.budget_fraction, 0.2 - 1e-12);
  }
}

TEST(Bohb, FallsBackToRandomWithoutObservations) {
  // With an empty history BOHB must not crash and must sample uniformly.
  Bohb bohb;
  PipelineEvaluator evaluator = MakeEvaluator(15);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(40), 15});
  bohb.Initialize(&context);
  bohb.Iterate(&context);
  EXPECT_GT(context.history().size(), 0u);
}

TEST(Bohb, RunsManyBracketsUnderBudget) {
  Bohb::Config config;
  config.hyperband.eta = 3.0;
  config.hyperband.min_fraction = 1.0 / 9.0;
  config.min_observations = 4;
  Bohb bohb(config);
  PipelineEvaluator evaluator = MakeEvaluator(16);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(30), 16});
  bohb.Initialize(&context);
  while (!context.BudgetExhausted()) {
    bohb.Iterate(&context);
  }
  // Budget accounting: cost is bounded by the (fractional) budget.
  EXPECT_LE(context.evaluation_cost(), 31.0);
  EXPECT_GT(context.num_evaluations(), 30);  // partials are cheap.
}

}  // namespace
}  // namespace autofp
