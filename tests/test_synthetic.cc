#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/benchmark_suite.h"
#include "util/stats.h"

namespace autofp {
namespace {

SyntheticSpec BaseSpec(SyntheticFamily family) {
  SyntheticSpec spec;
  spec.name = "test";
  spec.family = family;
  spec.rows = 400;
  spec.cols = 8;
  spec.num_classes = 3;
  spec.seed = 123;
  return spec;
}

class FamilySweep : public ::testing::TestWithParam<SyntheticFamily> {};

TEST_P(FamilySweep, ShapeAndLabelsValid) {
  SyntheticSpec spec = BaseSpec(GetParam());
  Dataset d = GenerateSynthetic(spec);
  EXPECT_EQ(d.num_rows(), 400u);
  EXPECT_EQ(d.num_cols(), 8u);
  EXPECT_EQ(d.num_classes, 3);
  EXPECT_TRUE(d.Validate().ok()) << d.Validate().ToString();
  // Every class represented.
  for (double count : d.ClassCounts()) EXPECT_GT(count, 0.0);
  // All values finite.
  for (size_t r = 0; r < d.num_rows(); ++r) {
    for (size_t c = 0; c < d.num_cols(); ++c) {
      EXPECT_TRUE(std::isfinite(d.features(r, c)));
    }
  }
}

TEST_P(FamilySweep, DeterministicForSeed) {
  SyntheticSpec spec = BaseSpec(GetParam());
  Dataset a = GenerateSynthetic(spec);
  Dataset b = GenerateSynthetic(spec);
  EXPECT_TRUE(a.features == b.features);
  EXPECT_EQ(a.labels, b.labels);
}

TEST_P(FamilySweep, DifferentSeedsDiffer) {
  SyntheticSpec spec = BaseSpec(GetParam());
  Dataset a = GenerateSynthetic(spec);
  spec.seed = 999;
  Dataset b = GenerateSynthetic(spec);
  EXPECT_FALSE(a.features == b.features);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilySweep,
    ::testing::Values(SyntheticFamily::kScaledBlobs, SyntheticFamily::kSkewed,
                      SyntheticFamily::kHeavyTailed,
                      SyntheticFamily::kDirectional,
                      SyntheticFamily::kThresholdCoded,
                      SyntheticFamily::kNonlinearRings,
                      SyntheticFamily::kSparseHighDim),
    [](const ::testing::TestParamInfo<SyntheticFamily>& info) {
      return FamilyName(info.param);
    });

TEST(Synthetic, ScaledBlobsHaveHeterogeneousScales) {
  SyntheticSpec spec = BaseSpec(SyntheticFamily::kScaledBlobs);
  spec.cols = 12;
  Dataset d = GenerateSynthetic(spec);
  double min_std = 1e300, max_std = 0.0;
  for (size_t c = 0; c < d.num_cols(); ++c) {
    double s = StdDev(d.features.Column(c));
    min_std = std::min(min_std, s);
    max_std = std::max(max_std, s);
  }
  EXPECT_GT(max_std / min_std, 100.0);
}

TEST(Synthetic, SkewedFamilyIsRightSkewedAndPositive) {
  SyntheticSpec spec = BaseSpec(SyntheticFamily::kSkewed);
  Dataset d = GenerateSynthetic(spec);
  double mean_skew = 0.0;
  for (size_t c = 0; c < d.num_cols(); ++c) {
    std::vector<double> column = d.features.Column(c);
    for (double v : column) EXPECT_GT(v, 0.0);
    mean_skew += Skewness(column);
  }
  mean_skew /= static_cast<double>(d.num_cols());
  EXPECT_GT(mean_skew, 1.0);
}

TEST(Synthetic, ImbalanceSkewsClassPriors) {
  SyntheticSpec spec = BaseSpec(SyntheticFamily::kScaledBlobs);
  spec.imbalance = 0.3;
  spec.label_noise = 0.0;
  Dataset d = GenerateSynthetic(spec);
  std::vector<double> counts = d.ClassCounts();
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(Synthetic, NonlinearRingsRadiusEncodesClass) {
  SyntheticSpec spec = BaseSpec(SyntheticFamily::kNonlinearRings);
  spec.label_noise = 0.0;
  spec.separation = 5.0;
  Dataset d = GenerateSynthetic(spec);
  // Mean radius should be increasing in class id.
  std::vector<double> radius_sum(3, 0.0), count(3, 0.0);
  for (size_t r = 0; r < d.num_rows(); ++r) {
    double radius = std::hypot(d.features(r, 0), d.features(r, 1));
    radius_sum[d.labels[r]] += radius;
    count[d.labels[r]] += 1.0;
  }
  EXPECT_LT(radius_sum[0] / count[0], radius_sum[1] / count[1]);
  EXPECT_LT(radius_sum[1] / count[1], radius_sum[2] / count[2]);
}

TEST(Suite, AllSpecsGenerateValidDatasets) {
  for (const SyntheticSpec& spec : MiniSuiteSpecs()) {
    Dataset d = GenerateSynthetic(spec);
    EXPECT_TRUE(d.Validate().ok()) << spec.name;
    EXPECT_EQ(d.name, spec.name);
  }
}

TEST(Suite, FullSuiteHasDiverseShapes) {
  std::vector<SyntheticSpec> specs = BenchmarkSuiteSpecs();
  EXPECT_GE(specs.size(), 20u);
  size_t binary = 0, multi = 0, high_dim = 0;
  for (const SyntheticSpec& spec : specs) {
    if (spec.num_classes == 2) {
      ++binary;
    } else {
      ++multi;
    }
    if (spec.cols > 100) ++high_dim;
  }
  EXPECT_GT(binary, 0u);
  EXPECT_GT(multi, 0u);
  EXPECT_GE(high_dim, 3u);
}

TEST(Suite, NamesAreUnique) {
  std::vector<SyntheticSpec> specs = BenchmarkSuiteSpecs();
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].name, specs[j].name);
    }
  }
}

TEST(Suite, LookupByName) {
  Result<Dataset> d = GetSuiteDataset("heart_syn");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().num_rows(), 242u);
  EXPECT_FALSE(GetSuiteDataset("nope").ok());
}

}  // namespace
}  // namespace autofp
