#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(Rng, UniformRealRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[rng.Categorical({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(19);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Categorical({0.0, 0.0, 0.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  std::vector<size_t> perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(31);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The fork consumes state: parent continues on a different stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformInt(0, 1 << 20) == child.UniformInt(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace autofp
