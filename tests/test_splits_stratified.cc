#include "data/splits.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace autofp {
namespace {

Dataset ImbalancedData(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "strat";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 400;
  spec.cols = 4;
  spec.num_classes = 4;
  spec.seed = seed;
  spec.imbalance = 0.25;  // heavy geometric decay of class priors.
  spec.label_noise = 0.0;
  return GenerateSynthetic(spec);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  Dataset data = ImbalancedData(71);
  Rng rng(71);
  TrainValidSplit split = StratifiedSplitTrainValid(data, 0.8, &rng);
  std::vector<double> total = data.ClassCounts();
  std::vector<double> train = split.train.ClassCounts();
  for (int k = 0; k < data.num_classes; ++k) {
    if (total[k] < 5) continue;  // tiny classes can't hold the ratio.
    double ratio = train[k] / total[k];
    EXPECT_NEAR(ratio, 0.8, 0.15) << "class " << k;
  }
}

TEST(StratifiedSplit, EveryMultiRowClassOnBothSides) {
  Dataset data = ImbalancedData(72);
  Rng rng(72);
  TrainValidSplit split = StratifiedSplitTrainValid(data, 0.8, &rng);
  std::vector<double> total = data.ClassCounts();
  std::vector<double> train = split.train.ClassCounts();
  std::vector<double> valid = split.valid.ClassCounts();
  for (int k = 0; k < data.num_classes; ++k) {
    if (total[k] >= 2) {
      EXPECT_GT(train[k], 0.0) << "class " << k;
      EXPECT_GT(valid[k], 0.0) << "class " << k;
    }
  }
}

TEST(StratifiedSplit, CoversAllRowsExactlyOnce) {
  Dataset data = ImbalancedData(73);
  Rng rng(73);
  TrainValidSplit split = StratifiedSplitTrainValid(data, 0.75, &rng);
  EXPECT_EQ(split.train.num_rows() + split.valid.num_rows(),
            data.num_rows());
}

TEST(StratifiedSplit, DeterministicForSeed) {
  Dataset data = ImbalancedData(74);
  Rng rng_a(74), rng_b(74);
  TrainValidSplit a = StratifiedSplitTrainValid(data, 0.8, &rng_a);
  TrainValidSplit b = StratifiedSplitTrainValid(data, 0.8, &rng_b);
  EXPECT_TRUE(a.train.features == b.train.features);
  EXPECT_EQ(a.valid.labels, b.valid.labels);
}

TEST(StratifiedSplit, SingletonClassGoesToTrain) {
  Dataset data;
  data.name = "singleton";
  data.num_classes = 3;
  data.features = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}};
  data.labels = {0, 0, 1, 1, 2};  // class 2 has one row.
  Rng rng(75);
  TrainValidSplit split = StratifiedSplitTrainValid(data, 0.5, &rng);
  std::vector<double> train = split.train.ClassCounts();
  EXPECT_DOUBLE_EQ(train[2], 1.0);
}

TEST(StratifiedSplit, PlainSplitCanMissAClassButStratifiedCannot) {
  // Construct data where one class has 3 rows among 100: a plain 80:20
  // split has a real chance of missing it in valid, the stratified split
  // never does.
  Dataset data;
  data.name = "rare";
  data.num_classes = 2;
  data.features = Matrix(100, 1);
  data.labels.assign(100, 0);
  for (size_t r = 0; r < 100; ++r) data.features(r, 0) = r;
  data.labels[10] = data.labels[50] = data.labels[90] = 1;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    TrainValidSplit split = StratifiedSplitTrainValid(data, 0.8, &rng);
    EXPECT_GT(split.valid.ClassCounts()[1], 0.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace autofp
