#include "core/search_framework.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "search/random_search.h"

namespace autofp {
namespace {

PipelineEvaluator MakeEvaluator(ModelKind kind = ModelKind::kXgboost,
                                uint64_t seed = 50) {
  SyntheticSpec spec;
  spec.name = "fw";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 200;
  spec.cols = 5;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  return PipelineEvaluator(split.train, split.valid,
                           ModelConfig::Defaults(kind));
}

TEST(Evaluator, AccuracyInRangeAndTimed) {
  PipelineEvaluator evaluator = MakeEvaluator();
  EvalRequest request;
  request.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
  Evaluation evaluation = evaluator.Evaluate(request);
  EXPECT_GE(evaluation.accuracy, 0.0);
  EXPECT_LE(evaluation.accuracy, 1.0);
  EXPECT_GT(evaluation.timing.prep_seconds, 0.0);
  EXPECT_GT(evaluation.timing.train_seconds, 0.0);
  EXPECT_EQ(evaluator.num_evaluations(), 1);
}

TEST(Evaluator, EmptyPipelineHasNoPrepWork) {
  PipelineEvaluator evaluator = MakeEvaluator();
  Evaluation evaluation = evaluator.Evaluate(EvalRequest{});
  // Identity pipeline: prep should be (near) free relative to training.
  EXPECT_LT(evaluation.timing.prep_seconds,
            evaluation.timing.train_seconds);
}

TEST(Evaluator, DeterministicForSamePipeline) {
  PipelineEvaluator evaluator = MakeEvaluator();
  EvalRequest request;
  request.pipeline = PipelineSpec::FromKinds(
      {PreprocessorKind::kMinMaxScaler, PreprocessorKind::kBinarizer});
  double a = evaluator.Evaluate(request).accuracy;
  double b = evaluator.Evaluate(request).accuracy;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Evaluator, BaselineCachedAndDoesNotConsumeBudget) {
  PipelineEvaluator evaluator = MakeEvaluator();
  double baseline = evaluator.BaselineAccuracy();
  EXPECT_DOUBLE_EQ(baseline, evaluator.BaselineAccuracy());
  EXPECT_EQ(evaluator.num_evaluations(), 0);
}

TEST(Evaluator, PartialBudgetUsesFewerRows) {
  PipelineEvaluator evaluator = MakeEvaluator();
  // A partial-budget evaluation must still work and produce valid accuracy.
  EvalRequest request;
  request.budget_fraction = 0.2;
  Evaluation evaluation = evaluator.Evaluate(request);
  EXPECT_GE(evaluation.accuracy, 0.0);
  EXPECT_LE(evaluation.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(evaluation.budget_fraction, 0.2);
}

TEST(Context, EvaluationBudgetStops) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(5), 1});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    context.Evaluate(space.SampleUniform(context.rng()));
  }
  EXPECT_EQ(context.num_evaluations(), 5);
  EXPECT_TRUE(context.BudgetExhausted());
  EXPECT_FALSE(context.Evaluate(space.SampleUniform(&rng)).has_value());
}

TEST(Context, PartialEvaluationsCostTheirFraction) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(2), 1});
  for (int i = 0; i < 6; ++i) {
    context.Evaluate(space.SampleUniform(context.rng()), 0.25);
  }
  // 6 quarter-cost evaluations = 1.5 units < 2: all succeed.
  EXPECT_EQ(context.num_evaluations(), 6);
  EXPECT_FALSE(context.BudgetExhausted());
  context.Evaluate(space.SampleUniform(context.rng()), 0.5);
  EXPECT_TRUE(context.BudgetExhausted());
}

TEST(Context, BestPrefersFullBudgetEvaluations) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(50), 1});
  PipelineSpec scaler =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
  context.Evaluate(scaler, 0.3);  // partial.
  ASSERT_TRUE(context.has_best());
  EXPECT_DOUBLE_EQ(context.best().budget_fraction, 0.3);
  context.Evaluate(scaler, 1.0);  // full replaces partial regardless.
  EXPECT_DOUBLE_EQ(context.best().budget_fraction, 1.0);
}

TEST(RunSearch, FindsResultWithinBudget) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  RandomSearch rs;
  SearchResult result =
      RunSearch(&rs, &evaluator, space, {Budget::Evaluations(20), 7});
  EXPECT_EQ(result.algorithm, "RS");
  EXPECT_EQ(result.num_evaluations, 20);
  EXPECT_GE(result.best_accuracy, 0.0);
  EXPECT_FALSE(result.best_pipeline.empty());
  EXPECT_GT(result.prep_seconds + result.train_seconds, 0.0);
  EXPECT_GE(result.pick_seconds, 0.0);
}

TEST(RunSearch, TimeBudgetTerminates) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  RandomSearch rs;
  SearchResult result =
      RunSearch(&rs, &evaluator, space, {Budget::Seconds(0.3), 7});
  EXPECT_GT(result.num_evaluations, 0);
  EXPECT_LT(result.elapsed_seconds, 5.0);
}

TEST(RunSearch, DeterministicForSeed) {
  SearchSpace space = SearchSpace::Default();
  PipelineEvaluator evaluator_a = MakeEvaluator();
  PipelineEvaluator evaluator_b = MakeEvaluator();
  RandomSearch rs_a, rs_b;
  SearchResult a =
      RunSearch(&rs_a, &evaluator_a, space, {Budget::Evaluations(15), 3});
  SearchResult b =
      RunSearch(&rs_b, &evaluator_b, space, {Budget::Evaluations(15), 3});
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy);
  EXPECT_TRUE(a.best_pipeline == b.best_pipeline);
}

TEST(RunSearch, BestAccuracyIsMaxOfHistory) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  // An adversarial algorithm that records nothing itself.
  class FixedSequence : public SearchAlgorithm {
   public:
    std::string name() const override { return "fixed"; }
    void Iterate(SearchContext* context) override {
      context->Evaluate(
          PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler}));
      context->Evaluate(
          PipelineSpec::FromKinds({PreprocessorKind::kBinarizer}));
    }
  };
  FixedSequence algorithm;
  SearchResult result =
      RunSearch(&algorithm, &evaluator, space, {Budget::Evaluations(4), 1});
  PipelineEvaluator check = MakeEvaluator();
  EvalRequest scaler_request;
  scaler_request.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
  EvalRequest binarizer_request;
  binarizer_request.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kBinarizer});
  double best = std::max(check.Evaluate(scaler_request).accuracy,
                         check.Evaluate(binarizer_request).accuracy);
  EXPECT_DOUBLE_EQ(result.best_accuracy, best);
}

TEST(RunSearch, StalledAlgorithmTerminates) {
  PipelineEvaluator evaluator = MakeEvaluator();
  SearchSpace space = SearchSpace::Default();
  class Stalled : public SearchAlgorithm {
   public:
    std::string name() const override { return "stalled"; }
    void Iterate(SearchContext* context) override { (void)context; }
  };
  Stalled algorithm;
  SearchResult result =
      RunSearch(&algorithm, &evaluator, space, {Budget::Evaluations(100), 1});
  EXPECT_EQ(result.num_evaluations, 0);
  // Falls back to baseline accuracy with an empty pipeline.
  EXPECT_DOUBLE_EQ(result.best_accuracy, result.baseline_accuracy);
}

TEST(Budget, FactoryHelpers) {
  EXPECT_EQ(Budget::Evaluations(10).max_evaluations, 10);
  EXPECT_LT(Budget::Evaluations(10).max_seconds, 0.0);
  EXPECT_DOUBLE_EQ(Budget::Seconds(2.5).max_seconds, 2.5);
  EXPECT_TRUE(Budget::Seconds(1).limited());
  EXPECT_FALSE(Budget{}.limited());
}

}  // namespace
}  // namespace autofp
