#include "preprocess/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "preprocess/pipeline.h"
#include "preprocess/preprocessor.h"
#include "util/random.h"
#include "util/simd.h"

namespace autofp {
namespace {

/// The property-test widths from the kernel layer's contract: every
/// remainder-lane count around the vector width, one aligned width, and
/// one wide enough to stress the strided paths. Odd widths also make
/// every row pointer unaligned, covering the unaligned-offset cases.
const size_t kWidths[] = {1,  2,  3,  4,  5,  6,  7,  8,  9, 10,
                          11, 12, 13, 14, 15, 16, 17, 64, 1000};
constexpr size_t kRows = 33;  // odd: remainder lanes down columns too.

::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<uint64_t>(a) << " vs "
         << std::bit_cast<uint64_t>(b) << ")";
}

void ExpectBitIdentical(const Matrix& actual, const Matrix& expected,
                        const char* label) {
  ASSERT_EQ(actual.rows(), expected.rows());
  ASSERT_EQ(actual.cols(), expected.cols());
  for (size_t r = 0; r < actual.rows(); ++r) {
    for (size_t c = 0; c < actual.cols(); ++c) {
      ASSERT_TRUE(BitEqual(actual(r, c), expected(r, c)))
          << label << " at (" << r << ", " << c << "), cols="
          << actual.cols();
    }
  }
}

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  Matrix out(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      switch (rng.UniformInt(0, 9)) {
        case 0: out(r, c) = 0.0; break;
        case 1: out(r, c) = -0.0; break;
        case 2: out(r, c) = static_cast<double>(rng.UniformInt(-2, 2)); break;
        default: out(r, c) = rng.Uniform(-10.0, 10.0); break;
      }
    }
  }
  return out;
}

/// Runs `apply` on four (layout, backend) combinations and requires all
/// of them to agree bit for bit with the scalar row-major reference —
/// the kernel layer's central exactness property.
template <typename Fn>
void CheckAllPaths(const Matrix& input, Fn apply, const char* label) {
  Matrix reference = input;
  {
    simd::ScopedForceScalar forced(true);
    apply(reference);
  }
  Matrix simd_row = input;
  apply(simd_row);
  ExpectBitIdentical(simd_row, reference, label);

  Matrix simd_col;
  simd_col.AssignWithLayout(input, Matrix::Layout::kColMajor);
  apply(simd_col);
  ExpectBitIdentical(simd_col, reference, label);

  Matrix scalar_col;
  scalar_col.AssignWithLayout(input, Matrix::Layout::kColMajor);
  {
    simd::ScopedForceScalar forced(true);
    apply(scalar_col);
  }
  ExpectBitIdentical(scalar_col, reference, label);
}

TEST(Kernels, BinarizeBitIdenticalAcrossPaths) {
  Rng rng(1);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    CheckAllPaths(
        input, [](Matrix& m) { kernels::Binarize(m, 0.25); }, "binarize");
  }
}

TEST(Kernels, ScaleColumnsBitIdenticalAcrossPaths) {
  Rng rng(2);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    std::vector<double> scales(cols);
    for (double& s : scales) s = rng.Uniform(0.5, 3.0);
    CheckAllPaths(
        input, [&](Matrix& m) { kernels::ScaleColumns(m, scales); },
        "scale_columns");
  }
}

TEST(Kernels, ShiftScaleColumnsBitIdenticalAcrossPaths) {
  Rng rng(3);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    std::vector<double> shifts(cols), scales(cols);
    for (double& s : shifts) s = rng.Uniform(-5.0, 5.0);
    for (double& s : scales) s = rng.Uniform(0.5, 3.0);
    CheckAllPaths(
        input,
        [&](Matrix& m) { kernels::ShiftScaleColumns(m, shifts, scales); },
        "shift_scale_columns");
  }
}

TEST(Kernels, NormalizeRowsBitIdenticalAcrossPaths) {
  Rng rng(4);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    for (NormKind kind : {NormKind::kL1, NormKind::kL2, NormKind::kMax}) {
      CheckAllPaths(
          input, [&](Matrix& m) { kernels::NormalizeRows(m, kind); },
          "normalize_rows");
    }
  }
}

TEST(Kernels, PowerTransformBitIdenticalAcrossPaths) {
  Rng rng(5);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    std::vector<double> lambdas(cols), means(cols), stddevs(cols);
    for (double& l : lambdas) l = rng.Uniform(-2.0, 3.0);
    for (double& m : means) m = rng.Uniform(-1.0, 1.0);
    for (double& s : stddevs) s = rng.Uniform(0.5, 2.0);
    for (bool standardize : {false, true}) {
      CheckAllPaths(
          input,
          [&](Matrix& m) {
            kernels::PowerTransformColumns(m, lambdas, means, stddevs,
                                           standardize);
          },
          "power_transform");
    }
  }
}

TEST(Kernels, QuantileTransformBitIdenticalAcrossPaths) {
  Rng rng(6);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    std::vector<std::vector<double>> references(cols);
    for (auto& table : references) {
      table.resize(static_cast<size_t>(rng.UniformInt(2, 12)));
      for (double& x : table) x = rng.Uniform(-12.0, 12.0);
      std::sort(table.begin(), table.end());
    }
    for (bool to_normal : {false, true}) {
      CheckAllPaths(
          input,
          [&](Matrix& m) {
            kernels::QuantileTransformColumns(m, references, to_normal);
          },
          "quantile_transform");
    }
  }
}

TEST(Kernels, FitReductionsBitIdenticalAcrossPaths) {
  Rng rng(7);
  for (size_t cols : kWidths) {
    const Matrix input = RandomMatrix(rng, kRows, cols);
    std::vector<double> means(cols);
    for (double& m : means) m = rng.Uniform(-1.0, 1.0);

    // Scalar row-major reference for each reduction.
    std::vector<double> ref_absmax, ref_mins, ref_maxs, ref_sums, ref_sq;
    {
      simd::ScopedForceScalar forced(true);
      kernels::ColumnAbsMax(input, &ref_absmax);
      kernels::ColumnMinMax(input, &ref_mins, &ref_maxs);
      kernels::ColumnSums(input, &ref_sums);
      kernels::ColumnSquaredDevSums(input, means, &ref_sq);
    }

    Matrix col_major;
    col_major.AssignWithLayout(input, Matrix::Layout::kColMajor);
    const Matrix* const paths[] = {&input, &col_major};
    for (const Matrix* m : paths) {
      std::vector<double> absmax, mins, maxs, sums, sq;
      kernels::ColumnAbsMax(*m, &absmax);
      kernels::ColumnMinMax(*m, &mins, &maxs);
      kernels::ColumnSums(*m, &sums);
      kernels::ColumnSquaredDevSums(*m, means, &sq);
      for (size_t c = 0; c < cols; ++c) {
        EXPECT_TRUE(BitEqual(absmax[c], ref_absmax[c])) << "cols=" << cols;
        EXPECT_TRUE(BitEqual(mins[c], ref_mins[c]));
        EXPECT_TRUE(BitEqual(maxs[c], ref_maxs[c]));
        EXPECT_TRUE(BitEqual(sums[c], ref_sums[c]));
        EXPECT_TRUE(BitEqual(sq[c], ref_sq[c]));
      }
    }
  }
}

TEST(Kernels, FitReductionsPreserveSignedZeroTies) {
  // A column of all -0.0 with one +0.0: the scalar strict-comparison
  // updates keep the first-seen -0.0 as both min and max; the vector
  // paths must reproduce that exactly (Min/Max intrinsics would not).
  Matrix data(kRows, simd::kDoubleLanes * 2 + 1);
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t c = 0; c < data.cols(); ++c) data(r, c) = -0.0;
  }
  for (size_t c = 0; c < data.cols(); ++c) data(kRows / 2, c) = 0.0;
  std::vector<double> mins, maxs;
  kernels::ColumnMinMax(data, &mins, &maxs);
  for (size_t c = 0; c < data.cols(); ++c) {
    EXPECT_TRUE(BitEqual(mins[c], -0.0));
    EXPECT_TRUE(BitEqual(maxs[c], -0.0));
  }
}

// --- Full preprocessors across layouts and backends -------------------------

TEST(Kernels, PreprocessorsFitTransformBitIdenticalAcrossPaths) {
  Rng rng(8);
  for (int kind_index = 0; kind_index < kNumPreprocessorKinds; ++kind_index) {
    const auto kind = static_cast<PreprocessorKind>(kind_index);
    const Matrix train = RandomMatrix(rng, kRows, 9);
    const Matrix apply = RandomMatrix(rng, 11, 9);

    Matrix ref_train = train, ref_apply = apply;
    {
      simd::ScopedForceScalar forced(true);
      auto step = MakePreprocessor(kind);
      step->Fit(ref_train);
      step->TransformInPlace(ref_train);
      step->TransformInPlace(ref_apply);
    }

    // SIMD row-major, and SIMD col-major fitted on a col-major copy.
    for (Matrix::Layout layout :
         {Matrix::Layout::kRowMajor, Matrix::Layout::kColMajor}) {
      Matrix fit_train, fit_apply;
      fit_train.AssignWithLayout(train, layout);
      fit_apply.AssignWithLayout(apply, layout);
      auto step = MakePreprocessor(kind);
      step->Fit(fit_train);
      step->TransformInPlace(fit_train);
      step->TransformInPlace(fit_apply);
      ExpectBitIdentical(fit_train, ref_train, "preprocessor train");
      ExpectBitIdentical(fit_apply, ref_apply, "preprocessor apply");
    }
  }
}

TEST(Kernels, ColumnarPipelineStagingBitIdenticalToScalarRowMajor) {
  // Enough rows to trigger the columnar data plane (ChooseWorkingLayout),
  // which stages col-major, runs the chain, and transposes back. The
  // result must match a plain scalar row-major chain bit for bit.
  Rng rng(9);
  const Matrix train = RandomMatrix(rng, 300, 5);
  const Matrix valid = RandomMatrix(rng, 80, 5);
  const PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler,
       PreprocessorKind::kQuantileTransformer});
  ASSERT_EQ(ChooseWorkingLayout(spec, train.rows()),
            Matrix::Layout::kColMajor);

  TransformedPair reference;
  {
    simd::ScopedForceScalar forced(true);
    reference.train = train;
    reference.valid = valid;
    for (const PreprocessorConfig& config : spec.steps) {
      auto step = MakePreprocessor(config);
      step->Fit(reference.train);
      step->TransformInPlace(reference.train);
      step->TransformInPlace(reference.valid);
    }
  }
  ASSERT_EQ(reference.train.layout(), Matrix::Layout::kRowMajor);

  const TransformedPair staged = FitTransformPair(spec, train, valid);
  EXPECT_EQ(staged.train.layout(), Matrix::Layout::kRowMajor);
  ExpectBitIdentical(staged.train, reference.train, "pipeline train");
  ExpectBitIdentical(staged.valid, reference.valid, "pipeline valid");

  // The scratch-backed uncached path takes the same staging route.
  TransformScratch scratch;
  Result<SharedTransformedPair> shared = CheckedFitTransformPairCached(
      spec, train, valid, nullptr, "test", &scratch);
  ASSERT_TRUE(shared.ok());
  ExpectBitIdentical(*shared.value().train, reference.train,
                     "scratch train");
  ExpectBitIdentical(*shared.value().valid, reference.valid,
                     "scratch valid");
}

}  // namespace
}  // namespace autofp
