#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, VarianceIsPopulation) {
  // Population variance of {1,2,3} = 2/3.
  EXPECT_NEAR(Variance({1.0, 2.0, 3.0}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(Stats, StdDevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({4.0, 4.0, 4.0}), 0.0);
}

TEST(Stats, SkewnessSymmetricIsZero) {
  EXPECT_NEAR(Skewness({-2.0, -1.0, 0.0, 1.0, 2.0}), 0.0, 1e-12);
}

TEST(Stats, SkewnessRightSkewedIsPositive) {
  EXPECT_GT(Skewness({1.0, 1.0, 1.0, 1.0, 10.0}), 1.0);
}

TEST(Stats, SkewnessConstantIsZero) {
  EXPECT_DOUBLE_EQ(Skewness({3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, KurtosisUniformLikeIsNegative) {
  // A two-point distribution has excess kurtosis -2 (minimum possible).
  EXPECT_NEAR(Kurtosis({-1.0, 1.0, -1.0, 1.0}), -2.0, 1e-12);
}

TEST(Stats, KurtosisHeavyTailIsPositive) {
  std::vector<double> values(100, 0.0);
  values[0] = 50.0;
  values[1] = -50.0;
  EXPECT_GT(Kurtosis(values), 3.0);
}

TEST(Stats, QuantileMatchesNumpyLinear) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0), 2.0);
}

TEST(Stats, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Stats, QuantileSingleValue) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.3), 7.0);
}

TEST(Stats, EntropyUniformIsLogK) {
  EXPECT_NEAR(Entropy({1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-12);
}

TEST(Stats, EntropyDegenerateIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({5.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
}

TEST(Stats, PearsonCorrelationExtremes) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1.0, 1.0, 1.0, 1.0}), 0.0);
}

TEST(Stats, NormalInverseCdfRoundTrips) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    double x = NormalInverseCdf(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-8) << "p=" << p;
  }
}

TEST(Stats, NormalInverseCdfKnownValues) {
  EXPECT_NEAR(NormalInverseCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalInverseCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalInverseCdf(0.025), -1.959964, 1e-5);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, SortedAndUnsortedAgree) {
  std::vector<double> sorted = {-3.0, -1.0, 0.0, 2.0, 2.0, 5.0, 9.0};
  std::vector<double> shuffled = {9.0, 0.0, 2.0, -3.0, 5.0, -1.0, 2.0};
  double q = GetParam();
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, q), Quantile(shuffled, q));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.66, 0.9,
                                           1.0));

}  // namespace
}  // namespace autofp
