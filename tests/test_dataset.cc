#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/splits.h"

namespace autofp {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  d.features = {{0.0, 1.0}, {1.0, 1.0}, {2.0, 0.0}, {3.0, 0.0},
                {4.0, 1.0}, {5.0, 0.0}, {6.0, 1.0}, {7.0, 0.0}};
  d.labels = {0, 0, 1, 1, 0, 1, 0, 1};
  d.num_classes = 2;
  return d;
}

TEST(Dataset, ClassCounts) {
  Dataset d = TinyDataset();
  std::vector<double> counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts[0], 4.0);
  EXPECT_DOUBLE_EQ(counts[1], 4.0);
}

TEST(Dataset, SelectRowsKeepsLabels) {
  Dataset d = TinyDataset();
  Dataset s = d.SelectRows({2, 0});
  ASSERT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.labels[0], 1);
  EXPECT_EQ(s.labels[1], 0);
  EXPECT_DOUBLE_EQ(s.features(0, 0), 2.0);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset d = TinyDataset();
  EXPECT_TRUE(d.Validate().ok());
  d.labels[0] = 7;
  EXPECT_FALSE(d.Validate().ok());
  d.labels[0] = -1;
  EXPECT_FALSE(d.Validate().ok());
}

TEST(Dataset, ValidateCatchesRowMismatch) {
  Dataset d = TinyDataset();
  d.labels.pop_back();
  EXPECT_FALSE(d.Validate().ok());
}

TEST(Dataset, SizeMb) {
  Dataset d = TinyDataset();
  EXPECT_NEAR(d.SizeMb(), 8 * 2 * 8 / 1e6, 1e-12);
}

TEST(Dataset, FromMatrixDensifiesLabels) {
  Matrix table = {{1.0, 10.0}, {2.0, 30.0}, {3.0, 10.0}, {4.0, 20.0}};
  Result<Dataset> d = DatasetFromMatrix(table, "t");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().num_classes, 3);
  // Labels 10, 30, 10, 20 -> 0, 2, 0, 1 (sorted order).
  EXPECT_EQ(d.value().labels[0], 0);
  EXPECT_EQ(d.value().labels[1], 2);
  EXPECT_EQ(d.value().labels[3], 1);
  EXPECT_EQ(d.value().num_cols(), 1u);
}

TEST(Dataset, FromMatrixRejectsSingleColumn) {
  Matrix table = {{1.0}, {2.0}};
  EXPECT_FALSE(DatasetFromMatrix(table, "t").ok());
}

TEST(Splits, TrainValidProportions) {
  Dataset d = TinyDataset();
  Rng rng(5);
  TrainValidSplit split = SplitTrainValid(d, 0.75, &rng);
  EXPECT_EQ(split.train.num_rows(), 6u);
  EXPECT_EQ(split.valid.num_rows(), 2u);
  EXPECT_EQ(split.train.num_classes, 2);
}

TEST(Splits, TrainValidCoversAllRows) {
  Dataset d = TinyDataset();
  Rng rng(6);
  TrainValidSplit split = SplitTrainValid(d, 0.5, &rng);
  // Feature column 0 is unique per row: union of both sides = all rows.
  std::vector<bool> seen(8, false);
  for (size_t r = 0; r < split.train.num_rows(); ++r) {
    seen[static_cast<size_t>(split.train.features(r, 0))] = true;
  }
  for (size_t r = 0; r < split.valid.num_rows(); ++r) {
    seen[static_cast<size_t>(split.valid.features(r, 0))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Splits, KFoldPartition) {
  Rng rng(7);
  std::vector<std::vector<size_t>> folds = KFoldIndices(10, 3, &rng);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> hit(10, 0);
  for (const auto& fold : folds) {
    for (size_t index : fold) hit[index]++;
  }
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Splits, SubsampleRowsFraction) {
  Dataset d = TinyDataset();
  Rng rng(8);
  Dataset half = SubsampleRows(d, 0.5, &rng);
  EXPECT_EQ(half.num_rows(), 4u);
  Dataset full = SubsampleRows(d, 1.0, &rng);
  EXPECT_EQ(full.num_rows(), 8u);
}

TEST(Splits, SubsampleAtLeastOneRow) {
  Dataset d = TinyDataset();
  Rng rng(9);
  Dataset tiny = SubsampleRows(d, 0.01, &rng);
  EXPECT_GE(tiny.num_rows(), 1u);
}

}  // namespace
}  // namespace autofp
