/// Tests of the fault-tolerant evaluation subsystem: FaultInjector
/// determinism, retry/quarantine bookkeeping in SearchContext, deadline
/// semantics, and end-to-end searches over a rigged evaluator with 20%
/// injected faults.

#include <algorithm>
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/fault.h"
#include "core/search_framework.h"
#include "data/synthetic.h"
#include "data/splits.h"
#include "search/registry.h"
#include "search/two_step.h"

namespace autofp {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector determinism.

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultInjectorConfig config;
  config.fault_rate = 0.3;
  config.slowdown_rate = 0.2;
  config.slowdown_seconds = 0.7;
  config.seed = 1234;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    InjectionDecision da = a.Next();
    InjectionDecision db = b.Next();
    EXPECT_EQ(da.failure, db.failure) << "call " << i;
    EXPECT_DOUBLE_EQ(da.delay_seconds, db.delay_seconds) << "call " << i;
  }
  EXPECT_EQ(a.num_decisions(), 500);
  EXPECT_EQ(a.num_injected_faults(), b.num_injected_faults());
  EXPECT_EQ(a.num_injected_slowdowns(), b.num_injected_slowdowns());
  EXPECT_GT(a.num_injected_faults(), 0);
  EXPECT_GT(a.num_injected_slowdowns(), 0);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjectorConfig config;
  config.fault_rate = 0.5;
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Next().failure != b.Next().failure) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, ZeroRatesNeverInject) {
  FaultInjector injector(FaultInjectorConfig{});
  for (int i = 0; i < 100; ++i) {
    InjectionDecision decision = injector.Next();
    EXPECT_EQ(decision.failure, EvalFailure::kNone);
    EXPECT_DOUBLE_EQ(decision.delay_seconds, 0.0);
  }
  EXPECT_EQ(injector.num_injected_faults(), 0);
}

TEST(FaultTaxonomy, NamesAndTransience) {
  EXPECT_STREQ(EvalFailureName(EvalFailure::kNone), "OK");
  EXPECT_STREQ(EvalFailureName(EvalFailure::kNonFiniteOutput),
               "NonFiniteOutput");
  EXPECT_TRUE(IsTransientFailure(EvalFailure::kInjected));
  EXPECT_TRUE(IsTransientFailure(EvalFailure::kDeadlineExceeded));
  EXPECT_FALSE(IsTransientFailure(EvalFailure::kNonFiniteOutput));
  EXPECT_FALSE(IsTransientFailure(EvalFailure::kDegenerateTransform));
  EXPECT_FALSE(IsTransientFailure(EvalFailure::kModelDiverged));
  EXPECT_EQ(FailureFromStatus(Status::OutOfRange("x")),
            EvalFailure::kNonFiniteOutput);
  EXPECT_EQ(FailureFromStatus(Status::InvalidArgument("x")),
            EvalFailure::kDegenerateTransform);
  EXPECT_EQ(FailureFromStatus(Status::OK()), EvalFailure::kNone);
}

// ---------------------------------------------------------------------------
// Retry / quarantine bookkeeping in SearchContext.

/// Rigged evaluator whose failure behaviour is a function of the pipeline:
/// pipelines starting with Normalizer fail permanently (kNonFiniteOutput);
/// everything else scores by Binarizer count. Counts raw calls.
class FlakyRiggedEvaluator : public EvaluatorInterface {
 public:
  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    const PipelineSpec& pipeline = request.pipeline;
    ++num_calls_;
    Evaluation evaluation;
    evaluation.pipeline = pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    if (!pipeline.empty() &&
        pipeline.steps[0].kind == PreprocessorKind::kNormalizer) {
      evaluation.failure = EvalFailure::kNonFiniteOutput;
      evaluation.status = Status::OutOfRange("rigged non-finite");
      evaluation.accuracy = kPenaltyAccuracy;
      return evaluation;
    }
    double score = 0.3;
    for (const PreprocessorConfig& step : pipeline.steps) {
      if (step.kind == PreprocessorKind::kBinarizer) score += 0.1;
    }
    evaluation.accuracy = std::min(score, 1.0);
    return evaluation;
  }
  double BaselineAccuracy() override { return 0.3; }
  long num_calls() const { return num_calls_; }

 private:
  long num_calls_ = 0;
};

PipelineSpec SpecOf(std::initializer_list<PreprocessorKind> kinds) {
  return PipelineSpec::FromKinds(std::vector<PreprocessorKind>(kinds));
}

TEST(Quarantine, PermanentFailureIsNeverReEvaluated) {
  FlakyRiggedEvaluator evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(100), 7});
  PipelineSpec bad = SpecOf({PreprocessorKind::kNormalizer});

  std::optional<double> first = context.Evaluate(bad);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(*first, kPenaltyAccuracy);
  EXPECT_EQ(evaluator.num_calls(), 1);  // permanent: no retry attempts.
  EXPECT_EQ(context.num_failures(), 1);
  EXPECT_EQ(context.num_retries(), 0);
  EXPECT_EQ(context.num_quarantined(), 1);
  EXPECT_TRUE(context.IsQuarantined(bad));

  // Re-proposing the quarantined pipeline short-circuits: the evaluator is
  // not called again, the history records a flagged failure, and budget is
  // still charged so searches terminate.
  std::optional<double> second = context.Evaluate(bad);
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(*second, kPenaltyAccuracy);
  EXPECT_EQ(evaluator.num_calls(), 1);
  EXPECT_EQ(context.num_quarantine_hits(), 1);
  EXPECT_EQ(context.num_quarantined(), 1);
  EXPECT_DOUBLE_EQ(context.evaluation_cost(), 2.0);
  ASSERT_EQ(context.history().size(), 2u);
  EXPECT_EQ(context.history()[1].failure, EvalFailure::kNonFiniteOutput);
  EXPECT_TRUE(context.history()[1].failed());
}

TEST(Quarantine, FailedEvaluationsNeverBecomeBest) {
  FlakyRiggedEvaluator evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(100), 7});
  context.Evaluate(SpecOf({PreprocessorKind::kNormalizer}));
  EXPECT_FALSE(context.has_best());  // only a failed evaluation exists.
  context.Evaluate(SpecOf({PreprocessorKind::kBinarizer}));
  ASSERT_TRUE(context.has_best());
  EXPECT_FALSE(context.best().failed());
  EXPECT_DOUBLE_EQ(context.best().accuracy, 0.4);
  // Another failure afterwards must not displace the best.
  context.Evaluate(SpecOf({PreprocessorKind::kNormalizer,
                           PreprocessorKind::kBinarizer}));
  EXPECT_DOUBLE_EQ(context.best().accuracy, 0.4);
}

TEST(BestTracking, NonFiniteAccuracyIsRejected) {
  // A rigged evaluator that returns NaN for one specific pipeline but does
  // NOT flag it as failed — the framework must still reject it from
  // best-tracking (the NaN-poisoning fix).
  class NanEvaluator : public EvaluatorInterface {
   public:
    using EvaluatorInterface::Evaluate;
    Evaluation Evaluate(const EvalRequest& request) override {
      Evaluation evaluation;
      evaluation.pipeline = request.pipeline;
      evaluation.budget_fraction = request.budget_fraction;
      evaluation.accuracy =
          request.pipeline.size() == 1 ? std::nan("") : 0.5;
      return evaluation;
    }
    double BaselineAccuracy() override { return 0.5; }
  };
  NanEvaluator evaluator;
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(10), 7});
  context.Evaluate(SpecOf({PreprocessorKind::kBinarizer}));  // NaN score.
  EXPECT_FALSE(context.has_best());
  context.Evaluate(SpecOf({PreprocessorKind::kBinarizer,
                           PreprocessorKind::kStandardScaler}));
  ASSERT_TRUE(context.has_best());
  EXPECT_DOUBLE_EQ(context.best().accuracy, 0.5);
  // The NaN must not have poisoned best_key_: a later good score stays.
  context.Evaluate(SpecOf({PreprocessorKind::kBinarizer}));  // NaN again.
  EXPECT_DOUBLE_EQ(context.best().accuracy, 0.5);
}

TEST(Retry, TransientFaultsAreRetriedWithBookkeeping) {
  // Injected faults are transient: wrap the rigged evaluator in a
  // FaultInjectingEvaluator with a high fault rate and verify retries
  // happen and recovered evaluations keep their true score. Injection is
  // a pure function of the request seed, so distinct pipelines (distinct
  // seeds) are needed to explore varied injector outcomes.
  FlakyRiggedEvaluator inner;
  FaultInjectorConfig config;
  config.fault_rate = 0.5;
  config.seed = 99;
  FaultInjectingEvaluator evaluator(&inner, config);
  SearchSpace space = SearchSpace::Default();
  FaultPolicy policy;
  policy.max_retries = 3;
  SearchOptions options;
  options.budget = Budget::Evaluations(50);
  options.seed = 7;
  options.fault_policy = policy;
  SearchContext context(&space, &evaluator, options);
  int recovered_after_retry = 0;
  for (int i = 0; i < 50; ++i) {
    // Binarizer chains of varying length: all succeed in the rigged
    // landscape, each with its own request seed.
    std::vector<PreprocessorKind> kinds(static_cast<size_t>(i % 5) + 1,
                                        PreprocessorKind::kBinarizer);
    PipelineSpec pipeline = PipelineSpec::FromKinds(kinds);
    double expected =
        std::min(0.3 + 0.1 * static_cast<double>(kinds.size()), 1.0);
    std::optional<double> score = context.Evaluate(pipeline);
    if (!score.has_value()) break;
    const Evaluation& last = context.history().back();
    if (!last.failed() && last.attempts > 1) ++recovered_after_retry;
    if (!last.failed()) {
      EXPECT_DOUBLE_EQ(*score, expected);
    }
  }
  EXPECT_GT(context.num_failures(), 0);
  EXPECT_GT(context.num_retries(), 0);
  EXPECT_GT(recovered_after_retry, 0);
  // Transient failures never quarantine.
  EXPECT_EQ(context.num_quarantined(), 0);
}

TEST(Retry, BackoffIsBounded) {
  FaultPolicy policy;
  policy.max_retries = 10;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.03;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1), 0.01);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2), 0.02);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3), 0.03);  // capped.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(8), 0.03);  // still capped.
  EXPECT_DOUBLE_EQ(FaultPolicy{}.BackoffSeconds(3), 0.0);  // default: none.
}

// ---------------------------------------------------------------------------
// End-to-end: RunSearch under 20% injected faults.

double GradientLandscape(const PipelineSpec& pipeline) {
  double score = 0.3;
  for (const PreprocessorConfig& step : pipeline.steps) {
    if (step.kind == PreprocessorKind::kBinarizer) score += 0.15;
  }
  score -= 0.02 * static_cast<double>(pipeline.size());
  return std::min(score, 1.0);
}

class LandscapeEvaluator : public EvaluatorInterface {
 public:
  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    Evaluation evaluation;
    evaluation.pipeline = request.pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    evaluation.accuracy = GradientLandscape(request.pipeline);
    return evaluation;
  }
  double BaselineAccuracy() override {
    return GradientLandscape(PipelineSpec{});
  }
};

TEST(FaultySearch, TwentyPercentFaultsStillFindValidBest) {
  for (const char* name : {"RS", "TEVO_H", "TPE"}) {
    LandscapeEvaluator inner;
    FaultInjectorConfig config;
    config.fault_rate = 0.2;
    config.seed = 4242;
    FaultInjectingEvaluator evaluator(&inner, config);
    auto algorithm = MakeSearchAlgorithm(name).value();
    SearchResult result =
        RunSearch(algorithm.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(200), 21});
    EXPECT_TRUE(std::isfinite(result.best_accuracy)) << name;
    EXPECT_GE(result.best_accuracy, 0.5) << name;
    EXPECT_FALSE(result.best_pipeline.empty()) << name;
    EXPECT_GT(result.num_failures, 0) << name;
    EXPECT_GT(result.num_retries, 0) << name;
    EXPECT_EQ(result.num_quarantined, 0) << name;  // all faults transient.
  }
}

TEST(FaultySearch, TwoStepCountsDistinctQuarantinedPipelines) {
  // Each inner round owns its quarantine map, so the same Normalizer-first
  // pipeline can be quarantined in several rounds; the two-step report
  // must count distinct pipelines, not a per-round sum.
  FlakyRiggedEvaluator evaluator;
  TwoStepConfig config;
  config.algorithm = "RS";
  config.inner_budget = Budget::Evaluations(8);
  config.max_pipeline_length = 3;
  SearchResult result =
      RunTwoStep(config, &evaluator, ParameterSpace::LowCardinality(),
                 {Budget::Evaluations(64), 9});
  EXPECT_GT(result.num_quarantined, 0);
  EXPECT_EQ(result.num_quarantined,
            static_cast<long>(result.quarantined_pipelines.size()));
  EXPECT_TRUE(std::is_sorted(result.quarantined_pipelines.begin(),
                             result.quarantined_pipelines.end()));
  EXPECT_EQ(std::adjacent_find(result.quarantined_pipelines.begin(),
                               result.quarantined_pipelines.end()),
            result.quarantined_pipelines.end());
}

TEST(FaultySearch, RealEvaluatorWithInjectorAndDeadline) {
  SyntheticSpec spec;
  spec.name = "faulty";
  spec.rows = 120;
  spec.cols = 4;
  spec.num_classes = 2;
  spec.seed = 11;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(11);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 10;
  PipelineEvaluator evaluator(split.train, split.valid, model);
  FaultInjectorConfig config;
  config.fault_rate = 0.2;
  config.slowdown_rate = 0.1;
  config.slowdown_seconds = 100.0;  // always past the deadline below.
  config.seed = 12;
  evaluator.AttachFaultInjector(config);
  auto rs = MakeSearchAlgorithm("RS").value();
  SearchResult result =
      RunSearch(rs.get(), &evaluator, SearchSpace::Default(), {Budget::Evaluations(40).WithEvalDeadline(5.0), 11});
  EXPECT_TRUE(std::isfinite(result.best_accuracy));
  EXPECT_GT(result.best_accuracy, 0.0);
  EXPECT_GT(result.num_failures, 0);
  // The baseline is computed injection-free, so it is a real accuracy.
  EXPECT_GT(result.baseline_accuracy, 0.0);
}

TEST(FaultySearch, DeadlineZeroPointZeroOneFailsSlowEvaluations) {
  // A deadline far below any real evaluation time: every evaluation fails
  // with kDeadlineExceeded, best falls back to the baseline, and nothing
  // crashes.
  SyntheticSpec spec;
  spec.name = "deadline";
  spec.rows = 400;
  spec.cols = 20;
  spec.num_classes = 2;
  spec.seed = 13;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(13);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  PipelineEvaluator evaluator(
      split.train, split.valid,
      ModelConfig::Defaults(ModelKind::kLogisticRegression));
  EvalRequest request;
  request.pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kStandardScaler});
  request.deadline_seconds = 1e-9;
  Evaluation evaluation = evaluator.Evaluate(request);
  EXPECT_TRUE(evaluation.failed());
  EXPECT_EQ(evaluation.failure, EvalFailure::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(evaluation.accuracy, kPenaltyAccuracy);
}

TEST(StratifiedSubsample, KeepsEveryClassAtTinyFractions) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.rows = 60;
  spec.cols = 3;
  spec.num_classes = 5;
  spec.seed = 17;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(17);
  for (double fraction : {0.01, 0.05, 0.1}) {
    Dataset sample = SubsampleRowsStratified(data, fraction, &rng);
    std::vector<int> counts(data.num_classes, 0);
    for (int label : sample.labels) counts[label]++;
    for (int cls = 0; cls < data.num_classes; ++cls) {
      EXPECT_GT(counts[cls], 0) << "class " << cls << " lost at fraction "
                                << fraction;
    }
  }
}

}  // namespace
}  // namespace autofp
