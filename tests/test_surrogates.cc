#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"
#include "search/progressive_nas.h"
#include "search/smac.h"
#include "search/tpe.h"

namespace autofp {
namespace {

PipelineEvaluator MakeEvaluator(uint64_t seed,
                                SyntheticFamily family =
                                    SyntheticFamily::kScaledBlobs) {
  SyntheticSpec spec;
  spec.name = "surr";
  spec.family = family;
  spec.rows = 240;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Rng rng(seed);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 20;
  return PipelineEvaluator(split.train, split.valid, model);
}

TEST(PipelineDensityMath, SmoothedProbabilitiesAreExact) {
  // 3 operators, max length 2, smoothing 1. Fit on {(0), (0,1)}.
  PipelineDensity density(3, 2, 1.0);
  density.Fit({{0}, {0, 1}});
  // Length pmf: weights [1+1, 1+1] -> P(len=1) = 2/4.
  // Position 0 pmf: weights [1+2, 1, 1] -> P(op0) = 3/5.
  // log P({0}) = log(2/4) + log(3/5).
  EXPECT_NEAR(density.LogProbability({0}),
              std::log(2.0 / 4.0) + std::log(3.0 / 5.0), 1e-12);
  // Position 1 pmf: weights [1, 1+1, 1] -> P(op1|pos1) = 2/4.
  EXPECT_NEAR(density.LogProbability({0, 1}),
              std::log(2.0 / 4.0) + std::log(3.0 / 5.0) +
                  std::log(2.0 / 4.0),
              1e-12);
}

TEST(PipelineDensityMath, UnseenOperatorsKeepNonzeroMass) {
  PipelineDensity density(3, 2, 1.0);
  density.Fit({{0}, {0}, {0}});
  // Operator 2 never observed, but smoothing keeps it samplable.
  EXPECT_GT(std::exp(density.LogProbability({2})), 0.0);
  Rng rng(1);
  bool saw_other = false;
  for (int i = 0; i < 500; ++i) {
    std::vector<int> sample = density.Sample(&rng);
    if (sample[0] != 0) saw_other = true;
  }
  EXPECT_TRUE(saw_other);
}

TEST(PipelineDensityMath, SamplesAreReproducible) {
  PipelineDensity density(4, 3, 1.0);
  density.Fit({{1, 2}, {1}, {3, 2, 0}});
  Rng a(9), b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(density.Sample(&a), density.Sample(&b));
  }
}

TEST(TpeGuidance, ConcentratesOnGoodRegion) {
  // Build a density pair by hand: good pipelines all start with op 0.
  PipelineDensity good(7, 4), bad(7, 4);
  std::vector<std::vector<int>> good_encodings, bad_encodings;
  Rng data_rng(3);
  for (int i = 0; i < 30; ++i) {
    good_encodings.push_back({0, static_cast<int>(data_rng.UniformIndex(7))});
    bad_encodings.push_back(
        {static_cast<int>(1 + data_rng.UniformIndex(6)),
         static_cast<int>(data_rng.UniformIndex(7))});
  }
  good.Fit(good_encodings);
  bad.Fit(bad_encodings);
  // l/g strongly prefers op 0 first.
  double score_good = good.LogProbability({0, 3}) - bad.LogProbability({0, 3});
  double score_bad = good.LogProbability({4, 3}) - bad.LogProbability({4, 3});
  EXPECT_GT(score_good, score_bad + 1.0);
}

TEST(Smac, ImprovesOnItsInitialization) {
  Smac::Config config;
  config.num_initial = 8;
  Smac smac(config);
  PipelineEvaluator evaluator = MakeEvaluator(21);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(40), 21});
  smac.Initialize(&context);
  double best_initial = 0.0;
  for (const Evaluation& evaluation : context.history()) {
    best_initial = std::max(best_initial, evaluation.accuracy);
  }
  while (!context.BudgetExhausted()) smac.Iterate(&context);
  EXPECT_GE(context.best().accuracy, best_initial);
  EXPECT_EQ(context.num_evaluations(), 40);
}

TEST(Smac, EvaluatesExactlyOnePipelinePerIteration) {
  Smac smac;
  PipelineEvaluator evaluator = MakeEvaluator(22);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(60), 22});
  smac.Initialize(&context);
  long before = context.num_evaluations();
  smac.Iterate(&context);
  EXPECT_EQ(context.num_evaluations(), before + 1);
}

TEST(ProgressiveNasBehavior, InitEvaluatesAllSingletons) {
  ProgressiveNas::Config config;
  ProgressiveNas pnas(config);
  PipelineEvaluator evaluator = MakeEvaluator(23);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(100), 23});
  pnas.Initialize(&context);
  EXPECT_EQ(context.num_evaluations(), 7);
  for (const Evaluation& evaluation : context.history()) {
    EXPECT_EQ(evaluation.pipeline.size(), 1u);
  }
}

TEST(ProgressiveNasBehavior, ExpansionGrowsPipelinesByOne) {
  ProgressiveNas::Config config;
  config.beam_width = 4;
  ProgressiveNas pnas(config);
  PipelineEvaluator evaluator = MakeEvaluator(24);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(100), 24});
  pnas.Initialize(&context);
  size_t after_init = context.history().size();
  pnas.Iterate(&context);
  // Everything evaluated in the first expansion has length 2.
  for (size_t i = after_init; i < context.history().size(); ++i) {
    EXPECT_EQ(context.history()[i].pipeline.size(), 2u);
  }
  size_t after_first = context.history().size();
  pnas.Iterate(&context);
  for (size_t i = after_first; i < context.history().size(); ++i) {
    EXPECT_EQ(context.history()[i].pipeline.size(), 3u);
  }
}

TEST(ProgressiveNasBehavior, NeverReevaluatesTheSamePipeline) {
  ProgressiveNas::Config config;
  config.beam_width = 3;
  ProgressiveNas pnas(config);
  PipelineEvaluator evaluator = MakeEvaluator(25);
  SearchSpace space = SearchSpace::Default(3);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(60), 25});
  pnas.Initialize(&context);
  for (int i = 0; i < 10 && !context.BudgetExhausted(); ++i) {
    pnas.Iterate(&context);
  }
  std::set<std::string> keys;
  size_t duplicates = 0;
  for (const Evaluation& evaluation : context.history()) {
    if (!keys.insert(evaluation.pipeline.Key()).second) ++duplicates;
  }
  // Random fallback after exhaustion may duplicate; the beam itself
  // must not (allow a small number from the fallback path).
  EXPECT_LE(duplicates, 5u);
}

TEST(ProgressiveNasBehavior, CapsSingletonInitInHugeSpaces) {
  ProgressiveNas::Config config;
  config.max_singleton_init = 10;
  ProgressiveNas pnas(config);
  PipelineEvaluator evaluator = MakeEvaluator(26);
  // One-step high-cardinality alphabet: thousands of operators.
  SearchSpace space = OneStepSpace(ParameterSpace::HighCardinality(), 4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(50), 26});
  pnas.Initialize(&context);
  EXPECT_EQ(context.num_evaluations(), 10);
}

TEST(ProgressiveNasBehavior, VariantsDiffer) {
  // MLP vs LSTM surrogates must produce different search trajectories.
  auto run = [](ProgressiveNas::SurrogateKind kind, bool ensemble) {
    ProgressiveNas::Config config;
    config.surrogate = kind;
    config.ensemble = ensemble;
    ProgressiveNas pnas(config);
    PipelineEvaluator evaluator = MakeEvaluator(27);
    SearchSpace space = SearchSpace::Default(4);
    return RunSearch(&pnas, &evaluator, space, {Budget::Evaluations(35), 27});
  };
  SearchResult pmne = run(ProgressiveNas::SurrogateKind::kMlp, false);
  SearchResult plne = run(ProgressiveNas::SurrogateKind::kLstm, false);
  EXPECT_EQ(pmne.algorithm, "PMNE");
  EXPECT_EQ(plne.algorithm, "PLNE");
  // Both complete their budgets.
  EXPECT_EQ(pmne.num_evaluations, 35);
  EXPECT_EQ(plne.num_evaluations, 35);
}

}  // namespace
}  // namespace autofp
