/// Property tests for the zero-copy data plane (DESIGN.md "Data plane
/// and memory"): TransformInPlace must be bit-identical to the copying
/// Transform for every preprocessor and shape, FittedPipeline's scratch
/// paths must match its copying path, and the cached fit/transform path
/// must agree with the uncached one while handing out shared (not
/// copied) matrices on repeat hits.

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "preprocess/pipeline.h"
#include "preprocess/preprocessor.h"
#include "preprocess/transform_cache.h"
#include "util/matrix.h"
#include "util/random.h"

namespace autofp {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    double* row = m.RowPtr(r);
    for (size_t c = 0; c < cols; ++c) row[c] = rng.Gaussian(0.0, 3.0);
  }
  return m;
}

/// Bit-level equality: every double in `a` has the same bit pattern as
/// the corresponding double in `b` (stricter than operator==, which
/// would e.g. conflate +0.0 and -0.0).
::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* pa = a.RowPtr(r);
    const double* pb = b.RowPtr(r);
    if (std::memcmp(pa, pb, a.cols() * sizeof(double)) != 0) {
      return ::testing::AssertionFailure() << "row " << r << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

/// The configurations the property tests sweep: every kind with default
/// parameters plus the non-default corners that exercise distinct kernel
/// branches.
std::vector<PreprocessorConfig> SweptConfigs() {
  std::vector<PreprocessorConfig> configs;
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    configs.push_back(PreprocessorConfig::Defaults(kind));
  }
  PreprocessorConfig binarizer =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  binarizer.threshold = 0.4;
  configs.push_back(binarizer);
  PreprocessorConfig l1 =
      PreprocessorConfig::Defaults(PreprocessorKind::kNormalizer);
  l1.norm = NormKind::kL1;
  configs.push_back(l1);
  PreprocessorConfig max_norm =
      PreprocessorConfig::Defaults(PreprocessorKind::kNormalizer);
  max_norm.norm = NormKind::kMax;
  configs.push_back(max_norm);
  PreprocessorConfig no_mean =
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler);
  no_mean.with_mean = false;
  configs.push_back(no_mean);
  PreprocessorConfig raw_power =
      PreprocessorConfig::Defaults(PreprocessorKind::kPowerTransformer);
  raw_power.standardize = false;
  configs.push_back(raw_power);
  PreprocessorConfig normal_quantile =
      PreprocessorConfig::Defaults(PreprocessorKind::kQuantileTransformer);
  normal_quantile.output_distribution = OutputDistribution::kNormal;
  normal_quantile.n_quantiles = 20;
  configs.push_back(normal_quantile);
  return configs;
}

/// The shapes each config is checked on. Fit always happens on non-empty
/// random data; the shapes below are what Transform is applied to.
std::vector<Matrix> SweptInputs(size_t cols) {
  std::vector<Matrix> inputs;
  inputs.push_back(Matrix(0, cols));                // zero rows
  inputs.push_back(RandomMatrix(1, cols, 7));       // single row
  Matrix constant(6, cols, 0.0);
  constant.SetColumn(1, std::vector<double>(6, 3.25));  // constant columns
  inputs.push_back(std::move(constant));
  inputs.push_back(RandomMatrix(40, cols, 11));     // dense random
  return inputs;
}

TEST(InPlace, BitIdenticalToTransformAcrossConfigsAndShapes) {
  const size_t cols = 4;
  const Matrix fit_data = RandomMatrix(60, cols, 3);
  for (const PreprocessorConfig& config : SweptConfigs()) {
    std::unique_ptr<Preprocessor> preprocessor = MakePreprocessor(config);
    preprocessor->Fit(fit_data);
    for (const Matrix& input : SweptInputs(cols)) {
      Matrix expected = preprocessor->Transform(input);
      Matrix in_place = input;
      preprocessor->TransformInPlace(in_place);
      EXPECT_TRUE(BitIdentical(expected, in_place))
          << config.ToString() << " on " << input.rows() << " rows";
    }
  }
}

TEST(InPlace, RepeatedInPlaceOnSameBufferMatchesChainedTransforms) {
  // A dirty, reused buffer must behave exactly like a fresh copy: run the
  // whole kind chain through one matrix and compare against chaining the
  // copying Transform.
  const Matrix fit_data = RandomMatrix(50, 3, 21);
  Matrix reused = RandomMatrix(12, 3, 22);
  Matrix expected = reused;
  for (PreprocessorKind kind : AllPreprocessorKinds()) {
    std::unique_ptr<Preprocessor> preprocessor = MakePreprocessor(kind);
    preprocessor->Fit(fit_data);
    preprocessor->TransformInPlace(reused);
    expected = preprocessor->Transform(expected);
    EXPECT_TRUE(BitIdentical(expected, reused)) << KindName(kind);
  }
}

PipelineSpec RandomSpec(Rng* rng, size_t max_steps) {
  PipelineSpec spec;
  const size_t steps = rng->UniformIndex(max_steps + 1);
  for (size_t i = 0; i < steps; ++i) {
    spec.steps.push_back(PreprocessorConfig::Defaults(
        AllPreprocessorKinds()[rng->UniformIndex(kNumPreprocessorKinds)]));
  }
  return spec;
}

TEST(InPlace, PipelineTransformIntoMatchesTransform) {
  const size_t cols = 5;
  const Matrix train = RandomMatrix(80, cols, 31);
  Rng rng(32);
  Matrix scratch = RandomMatrix(3, 2, 33);  // dirty, wrong shape on purpose
  for (int trial = 0; trial < 25; ++trial) {
    PipelineSpec spec = RandomSpec(&rng, 5);
    FittedPipeline pipeline = FittedPipeline::Fit(spec, train);
    Matrix input = RandomMatrix(17, cols, 1000 + trial);
    Matrix expected = pipeline.Transform(input);

    pipeline.TransformInto(input, &scratch);  // scratch reused every trial
    EXPECT_TRUE(BitIdentical(expected, scratch)) << spec.ToString();

    Matrix in_place = input;
    pipeline.TransformInPlace(in_place);
    EXPECT_TRUE(BitIdentical(expected, in_place)) << spec.ToString();

    // Aliased form: scratch == &data transforms the caller's matrix.
    pipeline.TransformInto(input, &input);
    EXPECT_TRUE(BitIdentical(expected, input)) << spec.ToString();
  }
}

TEST(InPlace, CachedPairMatchesUncheckedPairAcrossTrials) {
  const size_t cols = 4;
  const Matrix train = RandomMatrix(70, cols, 41);
  const Matrix valid = RandomMatrix(30, cols, 42);
  TransformCache cache(64 * 1024 * 1024);
  TransformScratch scratch;
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    PipelineSpec spec = RandomSpec(&rng, 4);
    Result<TransformedPair> reference =
        CheckedFitTransformPair(spec, train, valid);
    Result<SharedTransformedPair> cached = CheckedFitTransformPairCached(
        spec, train, valid, &cache, "data", &scratch);
    Result<SharedTransformedPair> uncached = CheckedFitTransformPairCached(
        spec, train, valid, /*cache=*/nullptr, "data", &scratch);
    ASSERT_EQ(reference.ok(), cached.ok()) << spec.ToString();
    ASSERT_EQ(reference.ok(), uncached.ok()) << spec.ToString();
    if (!reference.ok()) continue;
    EXPECT_TRUE(
        BitIdentical(reference.value().train, *cached.value().train))
        << spec.ToString();
    EXPECT_TRUE(
        BitIdentical(reference.value().valid, *cached.value().valid))
        << spec.ToString();
    EXPECT_TRUE(
        BitIdentical(reference.value().train, *uncached.value().train))
        << spec.ToString();
    EXPECT_TRUE(
        BitIdentical(reference.value().valid, *uncached.value().valid))
        << spec.ToString();
  }
}

TEST(InPlace, CacheHitHandsOutSharedMatricesNotCopies) {
  const Matrix train = RandomMatrix(40, 3, 51);
  const Matrix valid = RandomMatrix(20, 3, 52);
  TransformCache cache(64 * 1024 * 1024);
  PipelineSpec spec = PipelineSpec::FromKinds(
      {PreprocessorKind::kStandardScaler, PreprocessorKind::kMinMaxScaler});
  Result<SharedTransformedPair> first =
      CheckedFitTransformPairCached(spec, train, valid, &cache, "data");
  Result<SharedTransformedPair> second =
      CheckedFitTransformPairCached(spec, train, valid, &cache, "data");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // A full hit returns the cached matrices themselves: pointer identity,
  // zero copies.
  EXPECT_EQ(first.value().train.get(), second.value().train.get());
  EXPECT_EQ(first.value().valid.get(), second.value().valid.get());
}

TEST(InPlace, UncachedScratchPathAliasesScratchBuffers) {
  const Matrix train = RandomMatrix(40, 3, 61);
  const Matrix valid = RandomMatrix(20, 3, 62);
  TransformScratch scratch;
  PipelineSpec spec =
      PipelineSpec::FromKinds({PreprocessorKind::kMaxAbsScaler});
  Result<SharedTransformedPair> out = CheckedFitTransformPairCached(
      spec, train, valid, /*cache=*/nullptr, "data", &scratch);
  ASSERT_TRUE(out.ok());
  // The result is a non-owning view of the caller's scratch — the whole
  // point of threading scratch through the evaluator.
  EXPECT_EQ(out.value().train.get(), &scratch.train);
  EXPECT_EQ(out.value().valid.get(), &scratch.valid);
}

TEST(InPlace, EmptySpecAliasesInputs) {
  const Matrix train = RandomMatrix(10, 3, 71);
  const Matrix valid = RandomMatrix(5, 3, 72);
  Result<SharedTransformedPair> out = CheckedFitTransformPairCached(
      PipelineSpec{}, train, valid, /*cache=*/nullptr, "data");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().train.get(), &train);
  EXPECT_EQ(out.value().valid.get(), &valid);
}

}  // namespace
}  // namespace autofp
