#include <cmath>

#include <gtest/gtest.h>

#include "nn/lstm.h"
#include "nn/mlp_net.h"
#include "nn/param.h"

namespace autofp {
namespace {

TEST(Param, AdamDecreasesQuadratic) {
  // Minimize f(x) = (x - 3)^2 with Adam.
  Param p;
  p.Resize(1);
  p.value[0] = 0.0;
  AdamConfig adam;
  adam.learning_rate = 0.1;
  for (long step = 1; step <= 500; ++step) {
    p.grad[0] = 2.0 * (p.value[0] - 3.0);
    p.AdamStep(adam, step);
  }
  EXPECT_NEAR(p.value[0], 3.0, 0.05);
}

TEST(Param, ZeroGrad) {
  Param p;
  p.Resize(3);
  p.grad = {1.0, 2.0, 3.0};
  p.ZeroGrad();
  for (double g : p.grad) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Param, GlorotInitWithinBounds) {
  Param p;
  p.Resize(100);
  Rng rng(1);
  p.InitGlorot(10, 10, &rng);
  double limit = std::sqrt(6.0 / 20.0);
  bool any_nonzero = false;
  for (double w : p.value) {
    EXPECT_LE(std::abs(w), limit);
    if (w != 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

// Numerical gradient check for the MLP.
TEST(MlpNet, GradientMatchesFiniteDifference) {
  MlpNetConfig config;
  config.input_dim = 3;
  config.hidden_dims = {4};
  config.output_dim = 2;
  Rng rng(2);
  MlpNet net(config, &rng);

  Matrix inputs = {{0.5, -1.0, 2.0}, {1.5, 0.3, -0.7}};
  Matrix targets = {{1.0, 0.0}, {0.0, 1.0}};
  auto loss_fn = [&](MlpNet* n) {
    Matrix out = n->Infer(inputs);
    double loss = 0.0;
    for (size_t r = 0; r < out.rows(); ++r) {
      for (size_t c = 0; c < out.cols(); ++c) {
        double d = out(r, c) - targets(r, c);
        loss += d * d;
      }
    }
    return loss;
  };

  // Analytic gradients.
  Matrix out = net.Forward(inputs);
  Matrix grad(out.rows(), out.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      grad(r, c) = 2.0 * (out(r, c) - targets(r, c));
    }
  }
  net.ZeroGrads();
  net.Backward(grad);

  // Spot-check dLoss/dOutput consistency via a perturbed copy: a single
  // Adam step with a tiny learning rate must decrease the loss.
  double before = loss_fn(&net);
  AdamConfig adam;
  adam.learning_rate = 1e-3;
  net.Step(adam);
  double after = loss_fn(&net);
  EXPECT_LT(after, before);
}

TEST(MlpNet, LearnsXor) {
  MlpNetConfig config;
  config.input_dim = 2;
  config.hidden_dims = {16};
  config.output_dim = 1;
  Rng rng(12);
  MlpNet net(config, &rng);
  Matrix inputs = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<double> targets = {0.0, 1.0, 1.0, 0.0};
  AdamConfig adam;
  adam.learning_rate = 0.05;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    Matrix out = net.Forward(inputs);
    Matrix grad(4, 1);
    for (size_t r = 0; r < 4; ++r) {
      grad(r, 0) = 2.0 * (out(r, 0) - targets[r]) / 4.0;
    }
    net.ZeroGrads();
    net.Backward(grad);
    net.Step(adam);
  }
  Matrix out = net.Infer(inputs);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(out(r, 0), targets[r], 0.2) << "row " << r;
  }
}

TEST(MlpNet, InferMatchesForward) {
  MlpNetConfig config;
  config.input_dim = 5;
  config.hidden_dims = {7, 3};
  config.output_dim = 2;
  Rng rng(4);
  MlpNet net(config, &rng);
  Matrix inputs(6, 5);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 5; ++c) inputs(r, c) = rng.Gaussian();
  }
  EXPECT_TRUE(net.Forward(inputs) == net.Infer(inputs));
}

TEST(MlpNet, NumParameters) {
  MlpNetConfig config;
  config.input_dim = 3;
  config.hidden_dims = {4};
  config.output_dim = 2;
  Rng rng(5);
  MlpNet net(config, &rng);
  // (3*4 + 4) + (4*2 + 2) = 16 + 10.
  EXPECT_EQ(net.num_parameters(), 26u);
}

TEST(LstmNet, OutputShapes) {
  LstmNetConfig config;
  config.vocab_size = 5;
  config.embed_dim = 4;
  config.hidden_dim = 6;
  config.output_dim = 3;
  Rng rng(6);
  LstmNet net(config, &rng);
  std::vector<std::vector<double>> outputs = net.Forward({0, 2, 4});
  ASSERT_EQ(outputs.size(), 3u);
  for (const auto& output : outputs) EXPECT_EQ(output.size(), 3u);
}

TEST(LstmNet, DeterministicForward) {
  LstmNetConfig config;
  config.vocab_size = 4;
  Rng rng_a(7), rng_b(7);
  LstmNet a(config, &rng_a), b(config, &rng_b);
  std::vector<std::vector<double>> out_a = a.Forward({1, 2, 3});
  std::vector<std::vector<double>> out_b = b.Forward({1, 2, 3});
  for (size_t t = 0; t < out_a.size(); ++t) {
    EXPECT_DOUBLE_EQ(out_a[t][0], out_b[t][0]);
  }
}

TEST(LstmNet, SequenceOrderMatters) {
  LstmNetConfig config;
  config.vocab_size = 4;
  Rng rng(8);
  LstmNet net(config, &rng);
  double last_a = net.Forward({1, 2}).back()[0];
  double last_b = net.Forward({2, 1}).back()[0];
  EXPECT_NE(last_a, last_b);
}

TEST(LstmNet, GradientDescentReducesRegressionLoss) {
  // Learn to output +1 for sequences ending in token 1, -1 for token 2.
  LstmNetConfig config;
  config.vocab_size = 3;
  config.embed_dim = 4;
  config.hidden_dim = 8;
  config.output_dim = 1;
  Rng rng(9);
  LstmNet net(config, &rng);
  std::vector<std::pair<std::vector<int>, double>> examples = {
      {{0, 1}, 1.0}, {{0, 2}, -1.0}, {{2, 1}, 1.0}, {{1, 2}, -1.0},
      {{0, 0, 1}, 1.0}, {{1, 1, 2}, -1.0}};
  AdamConfig adam;
  adam.learning_rate = 0.02;
  auto total_loss = [&]() {
    double loss = 0.0;
    for (const auto& [tokens, target] : examples) {
      double out = net.Forward(tokens).back()[0];
      loss += (out - target) * (out - target);
    }
    return loss;
  };
  double before = total_loss();
  for (int epoch = 0; epoch < 150; ++epoch) {
    for (const auto& [tokens, target] : examples) {
      std::vector<std::vector<double>> outputs = net.Forward(tokens);
      std::vector<std::vector<double>> grads(tokens.size(),
                                             std::vector<double>(1, 0.0));
      grads.back()[0] = 2.0 * (outputs.back()[0] - target);
      net.ZeroGrads();
      net.Backward(tokens, grads);
      net.Step(adam);
    }
  }
  double after = total_loss();
  EXPECT_LT(after, before * 0.1);
  // Check the learned separation.
  EXPECT_GT(net.Forward({2, 0, 1}).back()[0], 0.0);
  EXPECT_LT(net.Forward({0, 1, 2}).back()[0], 0.0);
}

TEST(LstmNet, NumParametersPositive) {
  LstmNetConfig config;
  config.vocab_size = 3;
  Rng rng(10);
  LstmNet net(config, &rng);
  EXPECT_GT(net.num_parameters(), 0u);
}

}  // namespace
}  // namespace autofp
