/// Tests of the serving wire protocol (src/serve/protocol.h): frame
/// round trips, the incremental decoder under arbitrary read chunking,
/// and — the load-bearing property — the malformed-frame taxonomy: no
/// byte stream, however mangled, may crash the decoder, desync it
/// silently, or escape without a typed ServeError.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace autofp {
namespace {

/// Runs the decoder over `bytes` fed in `chunk`-sized pieces, collecting
/// every decoded frame; returns the terminal outcome (kNeedMore if the
/// stream ended cleanly between frames).
FrameDecoder::Outcome DecodeAll(const std::string& bytes, size_t chunk,
                                std::vector<Frame>* frames,
                                ServeError* error) {
  FrameDecoder decoder;
  std::string detail;
  *error = ServeError::kNone;
  FrameDecoder::Outcome last = FrameDecoder::Outcome::kNeedMore;
  for (size_t at = 0; at < bytes.size(); at += chunk) {
    decoder.Feed(bytes.data() + at, std::min(chunk, bytes.size() - at));
    for (;;) {
      Frame frame;
      last = decoder.Next(&frame, error, &detail);
      if (last != FrameDecoder::Outcome::kFrame) break;
      frames->push_back(frame);
    }
    if (last == FrameDecoder::Outcome::kBad) return last;
  }
  return last;
}

TEST(Protocol, DenseRequestRoundTrip) {
  Matrix rows{{1.0, 2.5, -3.0}, {4.0, 5.0, 6.0}};
  std::string bytes;
  EncodePredictDense(rows, &bytes);

  std::vector<Frame> frames;
  ServeError error;
  DecodeAll(bytes, bytes.size(), &frames, &error);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].frame_type(), FrameType::kPredictDense);

  ServeRequest request;
  std::string detail;
  ASSERT_EQ(ParseRequestFrame(frames[0], &request, &detail), ServeError::kNone)
      << detail;
  EXPECT_EQ(request.type, FrameType::kPredictDense);
  EXPECT_EQ(request.rows, rows);
}

TEST(Protocol, CsvRequestRoundTrip) {
  std::string bytes;
  EncodePredictCsv("1.0, 2.0\n3.5,4.5\n", &bytes);
  std::vector<Frame> frames;
  ServeError error;
  DecodeAll(bytes, bytes.size(), &frames, &error);
  ASSERT_EQ(frames.size(), 1u);

  ServeRequest request;
  std::string detail;
  ASSERT_EQ(ParseRequestFrame(frames[0], &request, &detail), ServeError::kNone)
      << detail;
  Matrix want{{1.0, 2.0}, {3.5, 4.5}};
  EXPECT_EQ(request.rows, want);
}

TEST(Protocol, AdminRequestRoundTrips) {
  std::string bytes;
  EncodeSwap("/tmp/some.afpa", &bytes);
  EncodeStats(&bytes);
  EncodePing(&bytes);
  std::vector<Frame> frames;
  ServeError error;
  DecodeAll(bytes, bytes.size(), &frames, &error);
  ASSERT_EQ(frames.size(), 3u);

  ServeRequest request;
  std::string detail;
  ASSERT_EQ(ParseRequestFrame(frames[0], &request, &detail), ServeError::kNone);
  EXPECT_EQ(request.type, FrameType::kSwap);
  EXPECT_EQ(request.text, "/tmp/some.afpa");
  ASSERT_EQ(ParseRequestFrame(frames[1], &request, &detail), ServeError::kNone);
  EXPECT_EQ(request.type, FrameType::kStats);
  ASSERT_EQ(ParseRequestFrame(frames[2], &request, &detail), ServeError::kNone);
  EXPECT_EQ(request.type, FrameType::kPing);
}

TEST(Protocol, ResponseRoundTrips) {
  // Predictions.
  ServeResponse predictions;
  predictions.type = FrameType::kPredictions;
  predictions.predictions = {0, 1, 2, 1};
  // Error with a detail string.
  ServeResponse error_response =
      ServeResponse::Error(ServeError::kBusy, "queue full");
  // Swap summary, stats report, pong.
  ServeResponse swapped;
  swapped.type = FrameType::kSwapped;
  swapped.message = "swapped generation=2";
  ServeResponse stats;
  stats.type = FrameType::kStatsReport;
  stats.message = "rows=12\n";
  ServeResponse pong;

  std::string bytes;
  for (const ServeResponse* response :
       {&predictions, &error_response, &swapped, &stats, &pong}) {
    EncodeResponse(*response, &bytes);
  }
  std::vector<Frame> frames;
  ServeError error;
  DecodeAll(bytes, bytes.size(), &frames, &error);
  ASSERT_EQ(frames.size(), 5u);

  ServeResponse decoded;
  ASSERT_TRUE(DecodeResponseFrame(frames[0], &decoded));
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.predictions, predictions.predictions);
  ASSERT_TRUE(DecodeResponseFrame(frames[1], &decoded));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error, ServeError::kBusy);
  EXPECT_EQ(decoded.message, "queue full");
  ASSERT_TRUE(DecodeResponseFrame(frames[2], &decoded));
  EXPECT_EQ(decoded.type, FrameType::kSwapped);
  EXPECT_EQ(decoded.message, swapped.message);
  ASSERT_TRUE(DecodeResponseFrame(frames[3], &decoded));
  EXPECT_EQ(decoded.type, FrameType::kStatsReport);
  ASSERT_TRUE(DecodeResponseFrame(frames[4], &decoded));
  EXPECT_EQ(decoded.type, FrameType::kPong);
  EXPECT_TRUE(decoded.ok());
}

TEST(Protocol, ByteAtATimeFeedReassemblesFrames) {
  // Reads may split a frame anywhere; one byte at a time is the extreme.
  Matrix rows{{7.0, 8.0}};
  std::string bytes;
  EncodePredictDense(rows, &bytes);
  EncodePing(&bytes);
  std::vector<Frame> frames;
  ServeError error;
  EXPECT_EQ(DecodeAll(bytes, 1, &frames, &error),
            FrameDecoder::Outcome::kNeedMore);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].frame_type(), FrameType::kPredictDense);
  EXPECT_EQ(frames[1].frame_type(), FrameType::kPing);
}

TEST(Protocol, EveryChunkSizeAgrees) {
  std::string bytes;
  EncodePredictCsv("1,2,3\n", &bytes);
  EncodeSwap("x", &bytes);
  EncodeStats(&bytes);
  for (size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
    std::vector<Frame> frames;
    ServeError error;
    DecodeAll(bytes, chunk, &frames, &error);
    ASSERT_EQ(frames.size(), 3u) << "chunk " << chunk;
  }
}

TEST(Protocol, TruncatedFrameIsDetectable) {
  std::string bytes;
  EncodePredictCsv("1,2\n", &bytes);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size() - 3);  // drop the CRC tail
  Frame frame;
  ServeError error;
  std::string detail;
  EXPECT_EQ(decoder.Next(&frame, &error, &detail),
            FrameDecoder::Outcome::kNeedMore);
  // The peer closing now would truncate mid-frame.
  EXPECT_TRUE(decoder.HasPartialFrame());
}

TEST(Protocol, BadMagicIsConnectionFatal) {
  std::string bytes;
  EncodePing(&bytes);
  bytes[0] ^= 0x5A;
  std::vector<Frame> frames;
  ServeError error;
  EXPECT_EQ(DecodeAll(bytes, bytes.size(), &frames, &error),
            FrameDecoder::Outcome::kBad);
  EXPECT_EQ(error, ServeError::kBadMagic);
  EXPECT_TRUE(IsConnectionFatal(error));
  EXPECT_TRUE(frames.empty());
}

TEST(Protocol, OversizedLengthIsConnectionFatal) {
  // Hand-craft a header that declares a payload past the frame bound.
  std::string bytes;
  bytes.append(reinterpret_cast<const char*>(&kFrameMagic), 4);
  bytes.push_back(static_cast<char>(FrameType::kPredictCsv));
  const uint32_t huge = kMaxFramePayload + 1;
  bytes.append(reinterpret_cast<const char*>(&huge), 4);
  std::vector<Frame> frames;
  ServeError error;
  EXPECT_EQ(DecodeAll(bytes, bytes.size(), &frames, &error),
            FrameDecoder::Outcome::kBad);
  EXPECT_EQ(error, ServeError::kFrameTooLarge);
  EXPECT_TRUE(IsConnectionFatal(error));
}

TEST(Protocol, CorruptedPayloadFailsCrc) {
  std::string bytes;
  EncodePredictCsv("1,2,3\n", &bytes);
  bytes[11] ^= 0x01;  // flip a payload byte; the CRC no longer matches
  std::vector<Frame> frames;
  ServeError error;
  EXPECT_EQ(DecodeAll(bytes, bytes.size(), &frames, &error),
            FrameDecoder::Outcome::kBad);
  EXPECT_EQ(error, ServeError::kBadCrc);
  EXPECT_TRUE(IsConnectionFatal(error));
}

TEST(Protocol, DecoderStaysBadAfterDesync) {
  std::string bytes;
  EncodePing(&bytes);
  bytes[0] ^= 1;
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  ServeError error;
  std::string detail;
  EXPECT_EQ(decoder.Next(&frame, &error, &detail),
            FrameDecoder::Outcome::kBad);
  // Feeding a pristine frame afterwards cannot resurrect the stream.
  std::string good;
  EncodePing(&good);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame, &error, &detail),
            FrameDecoder::Outcome::kBad);
}

TEST(Protocol, UnknownTypeIsWellFramedError) {
  // A correct frame with an unknown type byte decodes (length and CRC are
  // trusted) and fails request parsing with a non-fatal kBadType.
  std::string bytes;
  EncodeFrame(static_cast<FrameType>(42), "payload", &bytes);
  std::vector<Frame> frames;
  ServeError error;
  EXPECT_EQ(DecodeAll(bytes, bytes.size(), &frames, &error),
            FrameDecoder::Outcome::kNeedMore);
  ASSERT_EQ(frames.size(), 1u);
  ServeRequest request;
  std::string detail;
  EXPECT_EQ(ParseRequestFrame(frames[0], &request, &detail),
            ServeError::kBadType);
  EXPECT_FALSE(IsConnectionFatal(ServeError::kBadType));
}

TEST(Protocol, MalformedBodiesAreTypedNotFatal) {
  std::vector<std::string> payload_frames;
  // Dense header promises more rows than the payload holds.
  {
    std::string payload;
    const uint32_t rows = 100, cols = 100;
    payload.append(reinterpret_cast<const char*>(&rows), 4);
    payload.append(reinterpret_cast<const char*>(&cols), 4);
    payload.append(16, '\0');
    std::string bytes;
    EncodeFrame(FrameType::kPredictDense, payload, &bytes);
    payload_frames.push_back(bytes);
  }
  // CSV with a non-numeric cell, ragged widths, and no rows at all.
  for (const char* csv : {"1,banana\n", "1,2\n1,2,3\n", "\n \n"}) {
    std::string bytes;
    EncodePredictCsv(csv, &bytes);
    payload_frames.push_back(bytes);
  }
  // Empty swap path.
  {
    std::string bytes;
    EncodeSwap("", &bytes);
    payload_frames.push_back(bytes);
  }
  for (const std::string& bytes : payload_frames) {
    std::vector<Frame> frames;
    ServeError error;
    ASSERT_EQ(DecodeAll(bytes, bytes.size(), &frames, &error),
              FrameDecoder::Outcome::kNeedMore);
    ASSERT_EQ(frames.size(), 1u);
    ServeRequest request;
    std::string detail;
    const ServeError parse_error =
        ParseRequestFrame(frames[0], &request, &detail);
    EXPECT_EQ(parse_error, ServeError::kMalformedBody) << detail;
    EXPECT_FALSE(IsConnectionFatal(parse_error));
    EXPECT_FALSE(detail.empty());
  }
}

TEST(Protocol, GarbageFuzzNeverCrashes) {
  // Deterministic pseudo-random byte soup, fed at several chunk sizes: the
  // decoder must always land in a typed outcome, never crash or loop.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next_byte = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<char>(state >> 33);
  };
  for (size_t trial = 0; trial < 50; ++trial) {
    std::string soup;
    for (size_t i = 0; i < 512; ++i) soup.push_back(next_byte());
    // Half the trials lead with valid magic so the header parse goes
    // deeper before the bytes go bad.
    if (trial % 2 == 0) {
      std::memcpy(soup.data(), &kFrameMagic, sizeof(kFrameMagic));
    }
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{512}}) {
      std::vector<Frame> frames;
      ServeError error;
      const FrameDecoder::Outcome outcome =
          DecodeAll(soup, chunk, &frames, &error);
      if (outcome == FrameDecoder::Outcome::kBad) {
        EXPECT_TRUE(IsConnectionFatal(error)) << ServeErrorName(error);
      }
    }
  }
}

TEST(Protocol, FitRowsToSchema) {
  std::string reason;
  Matrix exact{{1.0, 2.0}};
  EXPECT_TRUE(FitRowsToSchema(&exact, 2, &reason));
  EXPECT_EQ(exact.cols(), 2u);
  // One trailing extra column (the label convention) is dropped.
  Matrix labeled{{1.0, 2.0, 9.0}, {3.0, 4.0, 8.0}};
  EXPECT_TRUE(FitRowsToSchema(&labeled, 2, &reason));
  Matrix want{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(labeled, want);
  // Anything else is a mismatch.
  Matrix wide{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_FALSE(FitRowsToSchema(&wide, 2, &reason));
  EXPECT_FALSE(reason.empty());
  Matrix narrow{{1.0}};
  EXPECT_FALSE(FitRowsToSchema(&narrow, 2, &reason));
}

TEST(Protocol, ExecuteRequestWithoutPredictor) {
  ServeRequest request;
  request.type = FrameType::kPredictDense;
  request.rows = Matrix{{1.0, 2.0}};
  ServeResponse response = ExecuteRequest(nullptr, request, 16);
  EXPECT_EQ(response.error, ServeError::kUnavailable);
  // Ping works even with nothing loaded.
  request.type = FrameType::kPing;
  EXPECT_TRUE(ExecuteRequest(nullptr, request, 16).ok());
}

}  // namespace
}  // namespace autofp
