#include "search/registry.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"
#include "search/anneal.h"
#include "search/evolution.h"
#include "search/hyperband.h"
#include "search/pbt.h"
#include "search/reinforce.h"
#include "search/tpe.h"

namespace autofp {
namespace {

/// A dataset where scaling clearly helps LR: heterogeneous feature scales.
Dataset ScaleSensitiveData(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "alg";
  spec.family = SyntheticFamily::kScaledBlobs;
  spec.rows = 240;
  spec.cols = 6;
  spec.num_classes = 2;
  spec.seed = seed;
  spec.separation = 2.0;
  spec.label_noise = 0.05;
  return GenerateSynthetic(spec);
}

PipelineEvaluator MakeEvaluator(uint64_t seed) {
  Dataset data = ScaleSensitiveData(seed);
  Rng rng(seed);
  TrainValidSplit split = SplitTrainValid(data, 0.8, &rng);
  ModelConfig model = ModelConfig::Defaults(ModelKind::kLogisticRegression);
  model.lr_epochs = 30;  // keep tests fast.
  return PipelineEvaluator(split.train, split.valid, model);
}

TEST(Registry, HasAllFifteenAlgorithms) {
  const std::vector<std::string>& names = AllSearchAlgorithmNames();
  EXPECT_EQ(names.size(), 15u);
  for (const std::string& name : names) {
    Result<std::unique_ptr<SearchAlgorithm>> algorithm =
        MakeSearchAlgorithm(name);
    ASSERT_TRUE(algorithm.ok()) << name;
    EXPECT_EQ(algorithm.value()->name(), name);
  }
}

TEST(Registry, UnknownNameFails) {
  EXPECT_FALSE(MakeSearchAlgorithm("NOPE").ok());
}

class EveryAlgorithm : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryAlgorithm, RunsWithinBudgetAndImproves) {
  PipelineEvaluator evaluator = MakeEvaluator(61);
  SearchSpace space = SearchSpace::Default(4);
  Result<std::unique_ptr<SearchAlgorithm>> algorithm =
      MakeSearchAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  SearchResult result = RunSearch(algorithm.value().get(), &evaluator, space, {Budget::Evaluations(40), 123});
  EXPECT_GT(result.num_evaluations, 0) << GetParam();
  // Bandit algorithms run many cheap partial evaluations; what is bounded
  // is the *cost* (full-training equivalents), with one overshoot allowed
  // for the evaluation in flight when the budget ran out.
  EXPECT_LE(result.evaluation_cost, 41.0) << GetParam();
  EXPECT_GE(result.best_accuracy, 0.3) << GetParam();
  // On a scale-sensitive dataset every algorithm should at least match the
  // no-FP baseline after 40 evaluations of a tiny space.
  EXPECT_GE(result.best_accuracy, result.baseline_accuracy - 0.02)
      << GetParam();
}

TEST_P(EveryAlgorithm, DeterministicForSeed) {
  SearchSpace space = SearchSpace::Default(4);
  PipelineEvaluator evaluator_a = MakeEvaluator(62);
  PipelineEvaluator evaluator_b = MakeEvaluator(62);
  Result<std::unique_ptr<SearchAlgorithm>> algorithm_a =
      MakeSearchAlgorithm(GetParam());
  Result<std::unique_ptr<SearchAlgorithm>> algorithm_b =
      MakeSearchAlgorithm(GetParam());
  SearchResult a = RunSearch(algorithm_a.value().get(), &evaluator_a, space, {Budget::Evaluations(25), 9});
  SearchResult b = RunSearch(algorithm_b.value().get(), &evaluator_b, space, {Budget::Evaluations(25), 9});
  EXPECT_DOUBLE_EQ(a.best_accuracy, b.best_accuracy) << GetParam();
  EXPECT_TRUE(a.best_pipeline == b.best_pipeline) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All, EveryAlgorithm,
                         ::testing::ValuesIn(AllSearchAlgorithmNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(RandomSearchBehavior, BeatsBaselineOnScaleSensitiveData) {
  PipelineEvaluator evaluator = MakeEvaluator(63);
  SearchSpace space = SearchSpace::Default();
  Result<std::unique_ptr<SearchAlgorithm>> rs = MakeSearchAlgorithm("RS");
  SearchResult result = RunSearch(rs.value().get(), &evaluator, space, {Budget::Evaluations(60), 5});
  EXPECT_GT(result.best_accuracy, result.baseline_accuracy + 0.02);
}

TEST(AnnealBehavior, AcceptsImprovementsGreedily) {
  // With temperature ~0, Anneal is pure hill climbing: its trajectory of
  // current states must be non-decreasing in accuracy.
  Anneal::Config config;
  config.initial_temperature = 1e-9;
  config.min_temperature = 1e-12;
  Anneal anneal(config);
  PipelineEvaluator evaluator = MakeEvaluator(64);
  SearchSpace space = SearchSpace::Default(4);
  SearchResult result = RunSearch(&anneal, &evaluator, space, {Budget::Evaluations(30), 11});
  EXPECT_GE(result.best_accuracy, result.baseline_accuracy - 0.05);
}

TEST(EvolutionBehavior, PopulationBoundedAndKillPoliciesDiffer) {
  TournamentEvolution::Config config;
  config.population_size = 6;
  config.tournament_size = 3;
  config.kill = TournamentEvolution::KillPolicy::kWorst;
  TournamentEvolution tevo_h(config);
  EXPECT_EQ(tevo_h.name(), "TEVO_H");
  config.kill = TournamentEvolution::KillPolicy::kOldest;
  TournamentEvolution tevo_y(config);
  EXPECT_EQ(tevo_y.name(), "TEVO_Y");
  PipelineEvaluator evaluator = MakeEvaluator(65);
  SearchSpace space = SearchSpace::Default(4);
  SearchResult result = RunSearch(&tevo_h, &evaluator, space, {Budget::Evaluations(30), 13});
  EXPECT_EQ(result.num_evaluations, 30);
}

TEST(PbtBehavior, ImprovesOverItsInitialPopulation) {
  Pbt::Config config;
  config.population_size = 6;
  Pbt pbt(config);
  PipelineEvaluator evaluator = MakeEvaluator(66);
  SearchSpace space = SearchSpace::Default();
  SearchResult result =
      RunSearch(&pbt, &evaluator, space, {Budget::Evaluations(60), 17});
  EXPECT_GT(result.best_accuracy, result.baseline_accuracy);
}

TEST(ReinforceBehavior, PolicyShiftsTowardRewardedTokens) {
  PipelineEvaluator evaluator = MakeEvaluator(67);
  SearchSpace space = SearchSpace::Default(3);
  Reinforce reinforce;
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(60), 19});
  reinforce.Initialize(&context);
  std::vector<double> initial = reinforce.PolicyProbabilities(0);
  while (!context.BudgetExhausted()) {
    reinforce.Iterate(&context);
  }
  std::vector<double> trained = reinforce.PolicyProbabilities(0);
  // The policy must have moved away from uniform.
  double drift = 0.0;
  for (size_t i = 0; i < trained.size(); ++i) {
    drift += std::abs(trained[i] - initial[i]);
  }
  EXPECT_GT(drift, 0.01);
}

TEST(HyperbandBehavior, UsesPartialBudgets) {
  Hyperband::Config config;
  config.eta = 3.0;
  config.min_fraction = 1.0 / 9.0;
  Hyperband hyperband(config);
  PipelineEvaluator evaluator = MakeEvaluator(68);
  SearchSpace space = SearchSpace::Default(4);
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(30), 23});
  hyperband.Initialize(&context);
  hyperband.Iterate(&context);
  bool has_partial = false, has_full = false;
  for (const Evaluation& evaluation : context.history()) {
    if (evaluation.budget_fraction < 1.0) has_partial = true;
    if (evaluation.budget_fraction >= 1.0) has_full = true;
  }
  EXPECT_TRUE(has_partial);
  EXPECT_TRUE(has_full);
  // The final answer must come from a full-budget evaluation.
  EXPECT_DOUBLE_EQ(context.best().budget_fraction, 1.0);
}

TEST(TpeBehavior, DensityFitAndSampling) {
  PipelineDensity density(3, 4);
  density.Fit({{0, 1}, {0, 1}, {0, 1, 2}});
  Rng rng(25);
  // Length-2 pipelines starting with operator 0 dominate the fit data.
  int start_zero = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<int> sample = density.Sample(&rng);
    EXPECT_GE(sample.size(), 1u);
    EXPECT_LE(sample.size(), 4u);
    if (sample[0] == 0) ++start_zero;
  }
  EXPECT_GT(start_zero, 100);
  // Log-probability favours what it saw.
  EXPECT_GT(density.LogProbability({0, 1}),
            density.LogProbability({2, 2}));
}

TEST(TpeBehavior, RunsAfterInitialization) {
  Tpe::Config config;
  config.num_initial = 8;
  Tpe tpe(config);
  PipelineEvaluator evaluator = MakeEvaluator(69);
  SearchSpace space = SearchSpace::Default(4);
  SearchResult result =
      RunSearch(&tpe, &evaluator, space, {Budget::Evaluations(25), 27});
  EXPECT_EQ(result.num_evaluations, 25);
}

}  // namespace
}  // namespace autofp
