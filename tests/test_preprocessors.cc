#include "preprocess/preprocessor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "preprocess/power_transformer.h"
#include "preprocess/quantile_transformer.h"
#include "util/random.h"
#include "util/stats.h"

namespace autofp {
namespace {

/// The worked example of the paper's Figure 1: a single feature column
/// [-1.5, 1, 1.5, 2.5, 3, 4, 5].
Matrix Figure1Column() {
  return Matrix{{-1.5}, {1.0}, {1.5}, {2.5}, {3.0}, {4.0}, {5.0}};
}

TEST(StandardScaler, MatchesFigure1) {
  auto scaler = MakePreprocessor(PreprocessorKind::kStandardScaler);
  Matrix out = scaler->FitTransform(Figure1Column());
  // Paper: mu = 2.21, sigma = 1.98; -1.5 -> -1.87.
  EXPECT_NEAR(out(0, 0), -1.87, 0.01);
  EXPECT_NEAR(out(1, 0), -0.61, 0.01);
  EXPECT_NEAR(out(6, 0), 1.41, 0.01);
  // Standardized output: zero mean, unit variance.
  std::vector<double> column = out.Column(0);
  EXPECT_NEAR(Mean(column), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(column), 1.0, 1e-12);
}

TEST(StandardScaler, ConstantColumnCenteredOnly) {
  auto scaler = MakePreprocessor(PreprocessorKind::kStandardScaler);
  Matrix constant = {{3.0}, {3.0}, {3.0}};
  Matrix out = scaler->FitTransform(constant);
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(out(r, 0), 0.0);
}

TEST(StandardScaler, WithMeanFalseOnlyScales) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler);
  config.with_mean = false;
  auto scaler = MakePreprocessor(config);
  Matrix out = scaler->FitTransform(Figure1Column());
  // Same scale as the centered version but shifted by mu/sigma.
  EXPECT_NEAR(out(0, 0), -1.5 / 1.9794, 0.001);
}

TEST(StandardScaler, TransformUsesTrainStatistics) {
  auto scaler = MakePreprocessor(PreprocessorKind::kStandardScaler);
  scaler->Fit(Figure1Column());
  Matrix other = {{2.2142857142857144}};
  Matrix out = scaler->Transform(other);
  EXPECT_NEAR(out(0, 0), 0.0, 1e-9);  // train mean maps to 0.
}

TEST(MaxAbsScaler, MatchesFigure1) {
  auto scaler = MakePreprocessor(PreprocessorKind::kMaxAbsScaler);
  Matrix out = scaler->FitTransform(Figure1Column());
  EXPECT_DOUBLE_EQ(out(0, 0), -0.3);
  EXPECT_DOUBLE_EQ(out(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(out(2, 0), 0.3);
  EXPECT_DOUBLE_EQ(out(6, 0), 1.0);
}

TEST(MaxAbsScaler, ZeroColumnUnchanged) {
  auto scaler = MakePreprocessor(PreprocessorKind::kMaxAbsScaler);
  Matrix zeros(4, 1, 0.0);
  Matrix out = scaler->FitTransform(zeros);
  for (size_t r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(out(r, 0), 0.0);
}

TEST(MinMaxScaler, MatchesFigure1) {
  auto scaler = MakePreprocessor(PreprocessorKind::kMinMaxScaler);
  Matrix out = scaler->FitTransform(Figure1Column());
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_NEAR(out(1, 0), 2.5 / 6.5, 1e-9);
  EXPECT_NEAR(out(2, 0), 3.0 / 6.5, 1e-9);
  EXPECT_NEAR(out(3, 0), 4.0 / 6.5, 1e-9);
  EXPECT_DOUBLE_EQ(out(6, 0), 1.0);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  auto scaler = MakePreprocessor(PreprocessorKind::kMinMaxScaler);
  Matrix constant = {{5.0}, {5.0}};
  Matrix out = scaler->FitTransform(constant);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
}

TEST(Normalizer, MatchesFigure1SingleColumn) {
  auto normalizer = MakePreprocessor(PreprocessorKind::kNormalizer);
  Matrix out = normalizer->FitTransform(Figure1Column());
  EXPECT_DOUBLE_EQ(out(0, 0), -1.0);
  for (size_t r = 1; r < 7; ++r) EXPECT_DOUBLE_EQ(out(r, 0), 1.0);
}

TEST(Normalizer, L2RowsHaveUnitNorm) {
  auto normalizer = MakePreprocessor(PreprocessorKind::kNormalizer);
  Matrix data = {{3.0, 4.0}, {1.0, 1.0}, {-2.0, 0.0}};
  Matrix out = normalizer->FitTransform(data);
  for (size_t r = 0; r < 3; ++r) {
    double norm = std::hypot(out(r, 0), out(r, 1));
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(out(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.8);
}

TEST(Normalizer, L1AndMaxNorms) {
  PreprocessorConfig l1 =
      PreprocessorConfig::Defaults(PreprocessorKind::kNormalizer);
  l1.norm = NormKind::kL1;
  Matrix data = {{2.0, -2.0}};
  Matrix out = MakePreprocessor(l1)->FitTransform(data);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(out(0, 1), -0.5);

  PreprocessorConfig max_norm = l1;
  max_norm.norm = NormKind::kMax;
  Matrix out_max = MakePreprocessor(max_norm)->FitTransform({{2.0, -4.0}});
  EXPECT_DOUBLE_EQ(out_max(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(out_max(0, 1), -1.0);
}

TEST(Normalizer, ZeroRowUnchanged) {
  auto normalizer = MakePreprocessor(PreprocessorKind::kNormalizer);
  Matrix out = normalizer->FitTransform({{0.0, 0.0}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
}

TEST(Binarizer, MatchesFigure1) {
  auto binarizer = MakePreprocessor(PreprocessorKind::kBinarizer);
  Matrix out = binarizer->FitTransform(Figure1Column());
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  for (size_t r = 1; r < 7; ++r) EXPECT_DOUBLE_EQ(out(r, 0), 1.0);
}

TEST(Binarizer, CustomThreshold) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  config.threshold = 2.5;
  Matrix out = MakePreprocessor(config)->FitTransform(Figure1Column());
  // 2.5 itself maps to 0 (scikit-learn: strictly greater).
  EXPECT_DOUBLE_EQ(out(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(4, 0), 1.0);
}

TEST(QuantileTransformer, MatchesFigure1) {
  auto transformer = MakePreprocessor(PreprocessorKind::kQuantileTransformer);
  Matrix out = transformer->FitTransform(Figure1Column());
  // 7 training rows cap n_quantiles at 7: value i maps to i/6.
  for (int i = 0; i < 7; ++i) {
    EXPECT_NEAR(out(i, 0), i / 6.0, 1e-9);
  }
}

TEST(QuantileTransformer, ClipsOutOfRange) {
  auto transformer = MakePreprocessor(PreprocessorKind::kQuantileTransformer);
  transformer->Fit(Figure1Column());
  Matrix out = transformer->Transform({{-100.0}, {100.0}, {2.75}});
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 1.0);
  EXPECT_GT(out(2, 0), 0.5);
  EXPECT_LT(out(2, 0), 0.67);
}

TEST(QuantileTransformer, NormalOutputIsCenteredAndBounded) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kQuantileTransformer);
  config.output_distribution = OutputDistribution::kNormal;
  Rng rng(3);
  Matrix data(500, 1);
  for (size_t r = 0; r < 500; ++r) data(r, 0) = std::exp(rng.Gaussian());
  Matrix out = MakePreprocessor(config)->FitTransform(data);
  std::vector<double> column = out.Column(0);
  EXPECT_NEAR(Mean(column), 0.0, 0.1);
  EXPECT_NEAR(StdDev(column), 1.0, 0.15);
  EXPECT_LT(std::abs(Skewness(column)), 0.2);
  for (double v : column) EXPECT_LT(std::abs(v), 6.0);
}

TEST(QuantileTransformer, MonotonicOnTrainData) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kQuantileTransformer);
  config.n_quantiles = 10;
  Rng rng(4);
  Matrix data(200, 1);
  for (size_t r = 0; r < 200; ++r) data(r, 0) = rng.Gaussian(0.0, 5.0);
  auto transformer = MakePreprocessor(config);
  Matrix out = transformer->FitTransform(data);
  for (size_t a = 0; a < 200; ++a) {
    for (size_t b = a + 1; b < 200; ++b) {
      if (data(a, 0) < data(b, 0)) {
        EXPECT_LE(out(a, 0), out(b, 0));
      }
    }
  }
}

TEST(PowerTransformer, Figure1LambdaNearPaper) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kPowerTransformer);
  config.standardize = false;
  PowerTransformer transformer(config);
  transformer.Fit(Figure1Column());
  // Paper reports lambda = 1.22 for this column (scipy MLE).
  EXPECT_NEAR(transformer.lambdas()[0], 1.22, 0.15);
}

TEST(PowerTransformer, YeoJohnsonBranches) {
  // x >= 0, lambda = 0: log1p.
  EXPECT_NEAR(PowerTransformer::YeoJohnson(1.0, 0.0), std::log(2.0), 1e-12);
  // x >= 0, lambda = 2: ((x+1)^2 - 1)/2.
  EXPECT_NEAR(PowerTransformer::YeoJohnson(1.0, 2.0), 1.5, 1e-12);
  // x < 0, lambda = 2: -log(1-x).
  EXPECT_NEAR(PowerTransformer::YeoJohnson(-1.0, 2.0), -std::log(2.0), 1e-12);
  // x < 0, lambda = 0: -((1-x)^2 - 1)/2.
  EXPECT_NEAR(PowerTransformer::YeoJohnson(-1.0, 0.0), -1.5, 1e-12);
  // Identity at lambda = 1 for x >= 0.
  EXPECT_NEAR(PowerTransformer::YeoJohnson(3.0, 1.0), 3.0, 1e-12);
}

TEST(PowerTransformer, YeoJohnsonIsMonotone) {
  for (double lambda : {-2.0, 0.0, 0.5, 1.0, 2.0, 3.0}) {
    double previous = PowerTransformer::YeoJohnson(-5.0, lambda);
    for (double x = -4.5; x <= 5.0; x += 0.5) {
      double value = PowerTransformer::YeoJohnson(x, lambda);
      EXPECT_GT(value, previous) << "lambda=" << lambda << " x=" << x;
      previous = value;
    }
  }
}

TEST(PowerTransformer, ReducesSkewOfLogNormal) {
  Rng rng(5);
  Matrix data(400, 1);
  for (size_t r = 0; r < 400; ++r) data(r, 0) = std::exp(rng.Gaussian());
  double raw_skew = Skewness(data.Column(0));
  auto transformer = MakePreprocessor(PreprocessorKind::kPowerTransformer);
  Matrix out = transformer->FitTransform(data);
  double transformed_skew = Skewness(out.Column(0));
  EXPECT_GT(raw_skew, 2.0);
  EXPECT_LT(std::abs(transformed_skew), 0.5);
}

TEST(PowerTransformer, StandardizedOutput) {
  Rng rng(6);
  Matrix data(300, 2);
  for (size_t r = 0; r < 300; ++r) {
    data(r, 0) = std::exp(rng.Gaussian());
    data(r, 1) = rng.Gaussian(5.0, 2.0);
  }
  auto transformer = MakePreprocessor(PreprocessorKind::kPowerTransformer);
  Matrix out = transformer->FitTransform(data);
  for (size_t c = 0; c < 2; ++c) {
    std::vector<double> column = out.Column(c);
    EXPECT_NEAR(Mean(column), 0.0, 1e-9);
    EXPECT_NEAR(StdDev(column), 1.0, 1e-9);
  }
}

TEST(PowerTransformer, ConstantColumnSafe) {
  auto transformer = MakePreprocessor(PreprocessorKind::kPowerTransformer);
  Matrix constant = {{2.0}, {2.0}, {2.0}};
  Matrix out = transformer->FitTransform(constant);
  for (size_t r = 0; r < 3; ++r) EXPECT_TRUE(std::isfinite(out(r, 0)));
}

// --- Generic properties over all preprocessors -----------------------------

class AllPreprocessors : public ::testing::TestWithParam<PreprocessorKind> {};

TEST_P(AllPreprocessors, PreservesShape) {
  auto preprocessor = MakePreprocessor(GetParam());
  Rng rng(7);
  Matrix data(40, 5);
  for (size_t r = 0; r < 40; ++r) {
    for (size_t c = 0; c < 5; ++c) data(r, c) = rng.Gaussian(0, 3);
  }
  Matrix out = preprocessor->FitTransform(data);
  EXPECT_EQ(out.rows(), data.rows());
  EXPECT_EQ(out.cols(), data.cols());
}

TEST_P(AllPreprocessors, OutputsAreFinite) {
  auto preprocessor = MakePreprocessor(GetParam());
  Rng rng(8);
  Matrix data(60, 3);
  for (size_t r = 0; r < 60; ++r) {
    data(r, 0) = rng.Gaussian() * 1e6;          // huge scale.
    data(r, 1) = rng.Gaussian() * 1e-8;         // tiny scale.
    data(r, 2) = std::exp(rng.Gaussian() * 3);  // extreme skew.
  }
  Matrix out = preprocessor->FitTransform(data);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_TRUE(std::isfinite(out(r, c)))
          << KindName(GetParam()) << " at (" << r << "," << c << ")";
    }
  }
}

TEST_P(AllPreprocessors, DeterministicTransform) {
  auto a = MakePreprocessor(GetParam());
  auto b = MakePreprocessor(GetParam());
  Rng rng(9);
  Matrix data(30, 4);
  for (size_t r = 0; r < 30; ++r) {
    for (size_t c = 0; c < 4; ++c) data(r, c) = rng.Gaussian();
  }
  EXPECT_TRUE(a->FitTransform(data) == b->FitTransform(data));
}

TEST_P(AllPreprocessors, CloneIsUnfittedSameConfig) {
  auto preprocessor = MakePreprocessor(GetParam());
  auto clone = preprocessor->Clone();
  EXPECT_TRUE(clone->config() == preprocessor->config());
}

TEST_P(AllPreprocessors, HandlesSingleRow) {
  auto preprocessor = MakePreprocessor(GetParam());
  Matrix single = {{1.5, -2.0, 0.0}};
  Matrix out = preprocessor->FitTransform(single);
  EXPECT_EQ(out.rows(), 1u);
  for (size_t c = 0; c < 3; ++c) EXPECT_TRUE(std::isfinite(out(0, c)));
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllPreprocessors,
    ::testing::ValuesIn(AllPreprocessorKinds()),
    [](const ::testing::TestParamInfo<PreprocessorKind>& info) {
      return KindName(info.param);
    });

TEST(PreprocessorConfig, ToStringShowsNonDefaults) {
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  EXPECT_EQ(config.ToString(), "Binarizer");
  config.threshold = 0.4;
  EXPECT_EQ(config.ToString(), "Binarizer(threshold=0.4)");
}

TEST(PreprocessorConfig, EqualityIgnoresIrrelevantFields) {
  PreprocessorConfig a =
      PreprocessorConfig::Defaults(PreprocessorKind::kMaxAbsScaler);
  PreprocessorConfig b = a;
  b.threshold = 0.9;  // irrelevant for MaxAbsScaler.
  EXPECT_TRUE(a == b);
  PreprocessorConfig c =
      PreprocessorConfig::Defaults(PreprocessorKind::kBinarizer);
  PreprocessorConfig d = c;
  d.threshold = 0.9;
  EXPECT_FALSE(c == d);
}

}  // namespace
}  // namespace autofp
