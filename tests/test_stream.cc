/// Tests of the streaming statistics layer (src/stream/): Welford running
/// moments vs batch moments, Chan's merge, the P² quantile sketch against
/// exact empirical quantiles on uniform/normal/heavy-tailed streams,
/// sketch merge associativity (within sketch tolerance — each merge is
/// itself a sketching step), state round-trips, the incremental-refit
/// hooks against batch Fit, and the drift monitor — including the
/// zero-variance-column regression (a constant reference column must be
/// a typed skip, never a division by zero).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "preprocess/maxabs_scaler.h"
#include "preprocess/minmax_scaler.h"
#include "preprocess/quantile_transformer.h"
#include "preprocess/standard_scaler.h"
#include "serve/artifact.h"
#include "stream/drift.h"
#include "stream/moments.h"
#include "stream/quantile_sketch.h"
#include "stream/reservoir.h"
#include "util/random.h"
#include "util/stats.h"

namespace autofp {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      // Distinct per-column location/scale so column mixups would show.
      data(r, c) = rng.Gaussian(static_cast<double>(c) * 3.0,
                                   1.0 + static_cast<double>(c));
    }
  }
  return data;
}

/// Rank of `value` in the sorted stream, as a CDF position in [0, 1] —
/// the scale-free error metric for quantile estimates (value-space error
/// is meaningless across a heavy tail).
double EmpiricalCdf(const std::vector<double>& sorted, double value) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

// ---------------------------------------------------------------------------
// Running moments.

TEST(RunningMoments, MatchesBatchMoments) {
  const Matrix data = RandomMatrix(999, 4, /*seed=*/7);
  RunningMoments moments(data.cols());
  moments.Observe(data);
  ASSERT_EQ(moments.rows(), data.rows());
  for (size_t c = 0; c < data.cols(); ++c) {
    const std::vector<double> column = data.Column(c);
    double mean = 0.0;
    for (double v : column) mean += v;
    mean /= static_cast<double>(column.size());
    double m2 = 0.0;
    for (double v : column) m2 += (v - mean) * (v - mean);
    EXPECT_NEAR(moments.Mean(c), mean, 1e-9 * (1.0 + std::fabs(mean)));
    EXPECT_NEAR(moments.M2(c), m2, 1e-7 * (1.0 + m2));
    EXPECT_EQ(moments.Min(c), *std::min_element(column.begin(), column.end()));
    EXPECT_EQ(moments.Max(c), *std::max_element(column.begin(), column.end()));
  }
}

TEST(RunningMoments, MergeMatchesSequentialPass) {
  const Matrix data = RandomMatrix(1000, 3, /*seed=*/11);
  RunningMoments sequential(data.cols());
  sequential.Observe(data);

  // Three uneven chunks accumulated independently, then merged.
  RunningMoments a(data.cols()), b(data.cols()), c(data.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    RunningMoments& part = r < 100 ? a : (r < 700 ? b : c);
    part.ObserveRow(data.RowPtr(r), data.cols());
  }
  RunningMoments merged(data.cols());
  merged.Merge(a);
  merged.Merge(b);
  merged.Merge(c);

  ASSERT_EQ(merged.rows(), sequential.rows());
  for (size_t col = 0; col < data.cols(); ++col) {
    EXPECT_NEAR(merged.Mean(col), sequential.Mean(col), 1e-9);
    EXPECT_NEAR(merged.Variance(col), sequential.Variance(col),
                1e-7 * (1.0 + sequential.Variance(col)));
    EXPECT_EQ(merged.Min(col), sequential.Min(col));
    EXPECT_EQ(merged.Max(col), sequential.Max(col));
  }
}

TEST(RunningMoments, MergeWithEmptySides) {
  const Matrix data = RandomMatrix(50, 2, /*seed=*/3);
  RunningMoments full(data.cols());
  full.Observe(data);

  RunningMoments into_empty(data.cols());
  into_empty.Merge(full);
  EXPECT_EQ(into_empty.rows(), full.rows());
  EXPECT_EQ(into_empty.Mean(0), full.Mean(0));

  RunningMoments from_empty = full;
  from_empty.Merge(RunningMoments(data.cols()));
  EXPECT_EQ(from_empty.rows(), full.rows());
  EXPECT_EQ(from_empty.Mean(1), full.Mean(1));
}

TEST(RunningMoments, StateRoundTripIsExact) {
  const Matrix data = RandomMatrix(123, 5, /*seed=*/19);
  RunningMoments moments(data.cols());
  moments.Observe(data);

  std::ostringstream out(std::ios::binary);
  moments.SaveState(out);
  RunningMoments loaded;
  std::istringstream in(out.str(), std::ios::binary);
  ASSERT_TRUE(loaded.LoadState(in).ok());
  EXPECT_EQ(in.peek(), EOF) << "trailing bytes";

  ASSERT_EQ(loaded.rows(), moments.rows());
  for (size_t c = 0; c < data.cols(); ++c) {
    // Bit-exact: the blob is the raw doubles.
    EXPECT_EQ(loaded.Mean(c), moments.Mean(c));
    EXPECT_EQ(loaded.M2(c), moments.M2(c));
    EXPECT_EQ(loaded.Min(c), moments.Min(c));
    EXPECT_EQ(loaded.Max(c), moments.Max(c));
  }
}

TEST(RunningMoments, LoadRejectsGarbage) {
  RunningMoments loaded;
  std::istringstream truncated(std::string("\x02\x00\x01", 3),
                               std::ios::binary);
  EXPECT_FALSE(loaded.LoadState(truncated).ok());
}

TEST(RunningMoments, ReferenceStatsConversionAgreesWithExport) {
  const Matrix data = RandomMatrix(200, 3, /*seed=*/23);
  RunningMoments moments(data.cols());
  moments.Observe(data);
  const ReferenceStats streamed = moments.ToReferenceStats();
  const ReferenceStats batch = ComputeReferenceStats(data);

  ASSERT_EQ(streamed.cols(), batch.cols());
  EXPECT_EQ(streamed.rows, batch.rows);
  for (size_t c = 0; c < batch.cols(); ++c) {
    EXPECT_NEAR(streamed.mean[c], batch.mean[c], 1e-12);
    EXPECT_NEAR(streamed.m2[c], batch.m2[c], 1e-9 * (1.0 + batch.m2[c]));
    EXPECT_EQ(streamed.min[c], batch.min[c]);
    EXPECT_EQ(streamed.max[c], batch.max[c]);
  }

  // Round-trip through the artifact representation is exact.
  const RunningMoments back = RunningMoments::FromReferenceStats(streamed);
  EXPECT_EQ(back.rows(), moments.rows());
  EXPECT_EQ(back.Mean(0), moments.Mean(0));
  EXPECT_EQ(back.M2(2), moments.M2(2));
}

// ---------------------------------------------------------------------------
// P² quantile sketch.

std::vector<double> UniformStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Uniform(-5.0, 13.0);
  return out;
}

std::vector<double> NormalStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Gaussian(2.0, 3.0);
  return out;
}

/// Lognormal: the heavy-tailed case where value-space tolerances explode
/// and only rank-space error is meaningful.
std::vector<double> HeavyTailStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = std::exp(rng.Gaussian(0.0, 1.5));
  return out;
}

void ExpectSketchTracksExactQuantiles(const std::vector<double>& stream,
                                      double rank_tolerance,
                                      const char* label) {
  P2QuantileSketch sketch;
  for (double v : stream) sketch.Observe(v);
  std::vector<double> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = sketch.Quantile(p);
    const double rank = EmpiricalCdf(sorted, estimate);
    EXPECT_NEAR(rank, p, rank_tolerance)
        << label << ": p=" << p << " estimate=" << estimate;
  }
  // Extremes are tracked exactly.
  EXPECT_EQ(sketch.Quantile(0.0), sorted.front()) << label;
  EXPECT_EQ(sketch.Quantile(1.0), sorted.back()) << label;
}

TEST(P2QuantileSketch, TracksUniformStream) {
  ExpectSketchTracksExactQuantiles(UniformStream(20000, 5), 0.02, "uniform");
}

TEST(P2QuantileSketch, TracksNormalStream) {
  ExpectSketchTracksExactQuantiles(NormalStream(20000, 6), 0.02, "normal");
}

TEST(P2QuantileSketch, TracksHeavyTailedStream) {
  // The lognormal tail is where P² earns a looser (but still tight in
  // rank space) bound.
  ExpectSketchTracksExactQuantiles(HeavyTailStream(20000, 8), 0.035,
                                   "heavy-tailed");
}

TEST(P2QuantileSketch, ExactWhileWarmingUp) {
  std::vector<double> values = NormalStream(20, 9);  // < default markers.
  P2QuantileSketch sketch;
  for (double v : values) sketch.Observe(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_NEAR(sketch.Quantile(p), QuantileSorted(sorted, p), 1e-12);
  }
}

TEST(P2QuantileSketch, ConstantStreamIsDegenerateButSane) {
  P2QuantileSketch sketch;
  for (int i = 0; i < 1000; ++i) sketch.Observe(4.25);
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(sketch.Quantile(p), 4.25);
  }
}

TEST(P2QuantileSketch, MergeApproximatesUnionStream) {
  const std::vector<double> a = NormalStream(6000, 21);
  const std::vector<double> b = UniformStream(9000, 22);
  P2QuantileSketch sketch_a, sketch_b;
  for (double v : a) sketch_a.Observe(v);
  for (double v : b) sketch_b.Observe(v);

  P2QuantileSketch merged = sketch_a;
  merged.Merge(sketch_b);
  EXPECT_EQ(merged.count(), a.size() + b.size());

  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(EmpiricalCdf(all, merged.Quantile(p)), p, 0.04)
        << "p=" << p;
  }
}

TEST(P2QuantileSketch, MergeIsAssociativeWithinTolerance) {
  // A merge is itself a sketching step, so differently-shaped merge trees
  // cannot agree bit-for-bit; they must agree within sketch tolerance in
  // rank space.
  const std::vector<double> a = NormalStream(4000, 31);
  const std::vector<double> b = HeavyTailStream(4000, 32);
  const std::vector<double> c = UniformStream(4000, 33);
  auto sketch_of = [](const std::vector<double>& stream) {
    P2QuantileSketch s;
    for (double v : stream) s.Observe(v);
    return s;
  };

  P2QuantileSketch left = sketch_of(a);
  left.Merge(sketch_of(b));
  left.Merge(sketch_of(c));

  P2QuantileSketch right_tail = sketch_of(b);
  right_tail.Merge(sketch_of(c));
  P2QuantileSketch right = sketch_of(a);
  right.Merge(right_tail);

  EXPECT_EQ(left.count(), right.count());
  std::vector<double> all = a;
  all.insert(all.end(), b.begin(), b.end());
  all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double rank_left = EmpiricalCdf(all, left.Quantile(p));
    const double rank_right = EmpiricalCdf(all, right.Quantile(p));
    EXPECT_NEAR(rank_left, rank_right, 0.05) << "p=" << p;
    EXPECT_NEAR(rank_left, p, 0.06) << "p=" << p;
  }
}

TEST(P2QuantileSketch, MergeWithEmptyAndSmallSketches) {
  P2QuantileSketch empty;
  P2QuantileSketch small;
  small.Observe(1.0);
  small.Observe(3.0);

  P2QuantileSketch merged = empty;
  merged.Merge(small);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.Quantile(0.0), 1.0);
  EXPECT_EQ(merged.Quantile(1.0), 3.0);

  // Two warm-up sketches whose union still fits the buffer stay exact.
  P2QuantileSketch other;
  other.Observe(2.0);
  merged.Merge(other);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_NEAR(merged.Quantile(0.5), 2.0, 1e-12);
}

TEST(P2QuantileSketch, StateRoundTripBothModes) {
  // Warm-up mode.
  P2QuantileSketch warm;
  for (double v : UniformStream(10, 41)) warm.Observe(v);
  std::ostringstream warm_out(std::ios::binary);
  warm.SaveState(warm_out);
  P2QuantileSketch warm_loaded;
  std::istringstream warm_in(warm_out.str(), std::ios::binary);
  ASSERT_TRUE(warm_loaded.LoadState(warm_in).ok());
  EXPECT_EQ(warm_loaded.count(), warm.count());
  EXPECT_EQ(warm_loaded.Quantile(0.5), warm.Quantile(0.5));

  // Marker mode.
  P2QuantileSketch full;
  for (double v : NormalStream(5000, 42)) full.Observe(v);
  std::ostringstream out(std::ios::binary);
  full.SaveState(out);
  P2QuantileSketch loaded;
  std::istringstream in(out.str(), std::ios::binary);
  ASSERT_TRUE(loaded.LoadState(in).ok());
  EXPECT_EQ(in.peek(), EOF) << "trailing bytes";
  EXPECT_EQ(loaded.count(), full.count());
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(loaded.Quantile(p), full.Quantile(p));
  }
}

TEST(P2QuantileSketch, LoadRejectsGarbage) {
  P2QuantileSketch loaded;
  std::istringstream truncated(std::string("\x20\x00\x00\x00\x05", 5),
                               std::ios::binary);
  EXPECT_FALSE(loaded.LoadState(truncated).ok());
}

// ---------------------------------------------------------------------------
// Incremental-refit hooks: a scaler refit from streamed statistics must
// transform like one batch-fitted on the same data.

TEST(RefitHooks, StandardScalerFromMoments) {
  const Matrix data = RandomMatrix(300, 4, /*seed=*/51);
  StandardScaler batch(
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler));
  batch.Fit(data);

  RunningMoments moments(data.cols());
  moments.Observe(data);
  StandardScaler streamed(
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler));
  streamed.FitFromMoments(moments.Means(), moments.StdDevs());

  Matrix expected = data, actual = data;
  batch.TransformInPlace(expected);
  streamed.TransformInPlace(actual);
  for (size_t i = 0; i < expected.data().size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i], 1e-9);
  }
}

TEST(RefitHooks, StandardScalerGuardsZeroStdDev) {
  StandardScaler streamed(
      PreprocessorConfig::Defaults(PreprocessorKind::kStandardScaler));
  streamed.FitFromMoments({5.0}, {0.0});
  Matrix rows(2, 1);
  rows(0, 0) = 5.0;
  rows(1, 0) = 7.0;
  streamed.TransformInPlace(rows);
  // Zero stddev -> centered only (scale 1), never a division by zero.
  EXPECT_EQ(rows(0, 0), 0.0);
  EXPECT_EQ(rows(1, 0), 2.0);
}

TEST(RefitHooks, MinMaxScalerFromStreamedRanges) {
  const Matrix data = RandomMatrix(300, 3, /*seed=*/52);
  MinMaxScaler batch(
      PreprocessorConfig::Defaults(PreprocessorKind::kMinMaxScaler));
  batch.Fit(data);

  RunningMoments moments(data.cols());
  moments.Observe(data);
  MinMaxScaler streamed(
      PreprocessorConfig::Defaults(PreprocessorKind::kMinMaxScaler));
  streamed.FitFromRanges(moments.Mins(), moments.Maxs());

  // Min/max stream exactly, so the refit transform is bit-identical.
  Matrix expected = data, actual = data;
  batch.TransformInPlace(expected);
  streamed.TransformInPlace(actual);
  EXPECT_TRUE(actual == expected);
}

TEST(RefitHooks, MaxAbsScalerFromStreamedScales) {
  const Matrix data = RandomMatrix(300, 3, /*seed=*/53);
  MaxAbsScaler batch(
      PreprocessorConfig::Defaults(PreprocessorKind::kMaxAbsScaler));
  batch.Fit(data);

  RunningMoments moments(data.cols());
  moments.Observe(data);
  MaxAbsScaler streamed(
      PreprocessorConfig::Defaults(PreprocessorKind::kMaxAbsScaler));
  streamed.FitFromScales(moments.MaxAbses());

  Matrix expected = data, actual = data;
  batch.TransformInPlace(expected);
  streamed.TransformInPlace(actual);
  EXPECT_TRUE(actual == expected);
}

TEST(RefitHooks, QuantileTransformerFromSketchReferences) {
  const Matrix data = RandomMatrix(100, 2, /*seed=*/54);
  PreprocessorConfig config =
      PreprocessorConfig::Defaults(PreprocessorKind::kQuantileTransformer);
  QuantileTransformer batch(config);
  batch.Fit(data);
  const int k = batch.effective_quantiles();

  // Oversized sketches stay in their exact warm-up buffer, so the
  // streamed reference tables match batch Fit's to interpolation
  // round-off.
  std::vector<std::vector<double>> references;
  for (size_t c = 0; c < data.cols(); ++c) {
    P2QuantileSketch sketch(/*markers=*/256);
    for (double v : data.Column(c)) sketch.Observe(v);
    references.push_back(sketch.References(k));
  }
  QuantileTransformer streamed(config);
  streamed.FitFromReferences(std::move(references));
  EXPECT_EQ(streamed.effective_quantiles(), k);

  Matrix expected = data, actual = data;
  batch.TransformInPlace(expected);
  streamed.TransformInPlace(actual);
  for (size_t i = 0; i < expected.data().size(); ++i) {
    EXPECT_NEAR(actual.data()[i], expected.data()[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Drift monitor.

ReferenceStats ReferenceFor(const Matrix& data) {
  return ComputeReferenceStats(data);
}

TEST(DriftMonitor, QuietOnInDistributionData) {
  const Matrix reference_data = RandomMatrix(2000, 3, /*seed=*/61);
  DriftConfig config;
  config.window_rows = 500;
  config.threshold = 0.5;
  DriftMonitor monitor(ReferenceFor(reference_data), config);

  const Matrix live = RandomMatrix(500, 3, /*seed=*/62);  // same distribution.
  std::optional<DriftReport> report = monitor.ObserveBatch(live);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->triggered);
  EXPECT_EQ(report->drifted_columns, 0u);
  EXPECT_EQ(report->window_rows, 500u);
  EXPECT_LT(report->max_statistic, 0.5);
}

TEST(DriftMonitor, TriggersOnMeanShift) {
  const Matrix reference_data = RandomMatrix(2000, 3, /*seed=*/63);
  DriftConfig config;
  config.window_rows = 400;
  config.threshold = 0.5;
  DriftMonitor monitor(ReferenceFor(reference_data), config);

  Matrix shifted = RandomMatrix(400, 3, /*seed=*/64);
  for (size_t r = 0; r < shifted.rows(); ++r) {
    shifted(r, 0) += 50.0;  // many reference stddevs on column 0.
  }
  std::optional<DriftReport> report = monitor.ObserveBatch(shifted);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->triggered);
  EXPECT_GE(report->drifted_columns, 1u);
  EXPECT_EQ(report->columns[0].state, ColumnDriftState::kDrifted);
  EXPECT_GT(report->columns[0].statistic, 10.0);
}

TEST(DriftMonitor, WindowBoundariesAndReset) {
  const Matrix reference_data = RandomMatrix(1000, 2, /*seed=*/65);
  DriftConfig config;
  config.window_rows = 300;
  DriftMonitor monitor(ReferenceFor(reference_data), config);

  // 200 rows: window still filling, no report.
  Matrix part = RandomMatrix(200, 2, /*seed=*/66);
  EXPECT_FALSE(monitor.ObserveBatch(part).has_value());
  EXPECT_EQ(monitor.rows_in_window(), 200u);

  // 150 more rows: crosses the boundary, reports, and the window restarts
  // with the 50-row remainder.
  Matrix more = RandomMatrix(150, 2, /*seed=*/67);
  EXPECT_TRUE(monitor.ObserveBatch(more).has_value());
  EXPECT_EQ(monitor.rows_in_window(), 50u);

  monitor.ResetWindow();
  EXPECT_EQ(monitor.rows_in_window(), 0u);
}

TEST(DriftMonitor, ConstantReferenceColumnIsTypedSkipNotDivision) {
  // Regression test for the zero-variance guard: a reference whose
  // columns are ALL constant can never produce a finite statistic — every
  // column must come back kSkippedZeroVariance (counted), the report must
  // not trigger, and nothing may divide by zero (NaN would poison
  // max_statistic).
  Matrix constant(100, 3);
  for (size_t r = 0; r < constant.rows(); ++r) {
    for (size_t c = 0; c < constant.cols(); ++c) {
      constant(r, c) = static_cast<double>(c) * 2.5;
    }
  }
  DriftConfig config;
  config.window_rows = 50;
  config.threshold = 0.5;
  DriftMonitor monitor(ReferenceFor(constant), config);

  // Wildly different live data: still must not trigger — the statistic is
  // undefined on constant reference columns, so skipping is the only
  // honest answer.
  Matrix live = RandomMatrix(50, 3, /*seed=*/68);
  std::optional<DriftReport> report = monitor.ObserveBatch(live);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->triggered);
  EXPECT_EQ(report->skipped_zero_variance, 3u);
  EXPECT_EQ(report->drifted_columns, 0u);
  EXPECT_EQ(report->max_statistic, 0.0);
  EXPECT_TRUE(std::isfinite(report->max_statistic));
  for (const ColumnDrift& column : report->columns) {
    EXPECT_EQ(column.state, ColumnDriftState::kSkippedZeroVariance);
    EXPECT_TRUE(std::isfinite(column.statistic));
  }
}

TEST(DriftMonitor, MixedConstantAndDriftingColumns) {
  // A constant column next to a genuinely drifting one: the skip must not
  // mask the trigger.
  Matrix reference_data = RandomMatrix(1000, 2, /*seed=*/69);
  for (size_t r = 0; r < reference_data.rows(); ++r) {
    reference_data(r, 1) = 7.0;  // column 1 constant.
  }
  DriftConfig config;
  config.window_rows = 200;
  config.threshold = 0.5;
  DriftMonitor monitor(ReferenceFor(reference_data), config);

  Matrix live = RandomMatrix(200, 2, /*seed=*/70);
  for (size_t r = 0; r < live.rows(); ++r) live(r, 0) += 100.0;
  std::optional<DriftReport> report = monitor.ObserveBatch(live);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->triggered);
  EXPECT_EQ(report->columns[0].state, ColumnDriftState::kDrifted);
  EXPECT_EQ(report->columns[1].state,
            ColumnDriftState::kSkippedZeroVariance);
  EXPECT_EQ(report->skipped_zero_variance, 1u);
}

// ---------------------------------------------------------------------------
// Reservoir sampler.

TEST(ReservoirSampler, KeepsEverythingBelowCapacity) {
  ReservoirSampler reservoir(/*capacity=*/10, /*cols=*/2, /*seed=*/1);
  for (int i = 0; i < 7; ++i) {
    double row[2] = {static_cast<double>(i), static_cast<double>(-i)};
    reservoir.ObserveRow(row, 2, i % 3);
  }
  EXPECT_EQ(reservoir.size(), 7u);
  EXPECT_EQ(reservoir.rows_seen(), 7u);
  Dataset snapshot = reservoir.Snapshot("s", /*num_classes=*/3);
  ASSERT_EQ(snapshot.num_rows(), 7u);
  EXPECT_EQ(snapshot.num_cols(), 2u);
  EXPECT_EQ(snapshot.features(3, 0), 3.0);
  EXPECT_EQ(snapshot.labels[4], 4 % 3);
  EXPECT_TRUE(snapshot.Validate().ok());
}

TEST(ReservoirSampler, BoundedAndRoughlyUniformPastCapacity) {
  const size_t capacity = 100;
  ReservoirSampler reservoir(capacity, /*cols=*/1, /*seed=*/2);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    double row[1] = {static_cast<double>(i)};
    reservoir.ObserveRow(row, 1, 0);
  }
  EXPECT_EQ(reservoir.size(), capacity);
  EXPECT_EQ(reservoir.rows_seen(), static_cast<uint64_t>(n));
  // Uniformity smoke check: the mean retained index should be near the
  // stream midpoint (a fixed seed keeps this deterministic).
  Dataset snapshot = reservoir.Snapshot("s", 1);
  double mean_index = 0.0;
  for (size_t r = 0; r < snapshot.num_rows(); ++r) {
    mean_index += snapshot.features(r, 0);
  }
  mean_index /= static_cast<double>(snapshot.num_rows());
  EXPECT_GT(mean_index, 0.3 * n);
  EXPECT_LT(mean_index, 0.7 * n);
}

TEST(ReservoirSampler, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    ReservoirSampler reservoir(8, 1, seed);
    for (int i = 0; i < 500; ++i) {
      double row[1] = {static_cast<double>(i)};
      reservoir.ObserveRow(row, 1, i % 2);
    }
    return reservoir.Snapshot("s", 2);
  };
  Dataset a = run(7), b = run(7), c = run(8);
  EXPECT_TRUE(a.features == b.features);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_FALSE(a.features == c.features);
}

}  // namespace
}  // namespace autofp
