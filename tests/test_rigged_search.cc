/// Property tests of search-algorithm behaviour on *rigged* reward
/// landscapes: a synthetic EvaluatorInterface whose accuracy is a known
/// deterministic function of the pipeline, so each algorithm's claimed
/// mechanism (hill climbing, exploitation, policy learning, halving
/// fidelity) can be asserted sharply without ML noise.

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "core/search_framework.h"
#include "search/registry.h"
#include "search/reinforce.h"

namespace autofp {
namespace {

/// Deterministic reward landscape over pipelines.
class RiggedEvaluator : public EvaluatorInterface {
 public:
  using ScoreFn = std::function<double(const PipelineSpec&)>;

  explicit RiggedEvaluator(ScoreFn score) : score_(std::move(score)) {}

  using EvaluatorInterface::Evaluate;

  Evaluation Evaluate(const EvalRequest& request) override {
    Evaluation evaluation;
    evaluation.pipeline = request.pipeline;
    evaluation.budget_fraction = request.budget_fraction;
    evaluation.accuracy = score_(request.pipeline);
    evaluation.timing.prep_seconds = 1e-6;
    evaluation.timing.train_seconds = 1e-6;
    return evaluation;
  }

  double BaselineAccuracy() override { return score_(PipelineSpec{}); }

 private:
  ScoreFn score_;
};

/// Landscape A ("gradient"): score grows with the number of Binarizer
/// steps and shrinks slightly with pipeline length; the global optimum is
/// the all-Binarizer pipeline of maximum length (clamped to 1.0).
double GradientLandscape(const PipelineSpec& pipeline) {
  double score = 0.3;
  for (const PreprocessorConfig& step : pipeline.steps) {
    if (step.kind == PreprocessorKind::kBinarizer) score += 0.15;
    if (step.kind == PreprocessorKind::kNormalizer) score -= 0.05;
  }
  score -= 0.02 * static_cast<double>(pipeline.size());
  return std::clamp(score, 0.0, 1.0);
}

double BestGradientScore() {
  // 7 Binarizers: 0.3 + 7*0.15 - 0.14 = 1.21 -> clamped 1.0.
  return 1.0;
}

class RiggedAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(RiggedAlgorithms, ClimbsTheGradientLandscape) {
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  auto algorithm = MakeSearchAlgorithm(GetParam()).value();
  SearchResult result = RunSearch(algorithm.get(), &evaluator, space, {Budget::Evaluations(300), 41});
  // A uniform sample scores ~0.35 in expectation; 300 looks at a smooth
  // landscape must reach at least a 3-Binarizer pipeline (score 0.69 at
  // length 3; pure random best-of-300 lands near 0.65).
  EXPECT_GE(result.best_accuracy, 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All, RiggedAlgorithms,
                         ::testing::ValuesIn(AllSearchAlgorithmNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(RiggedEvolution, ExploitationBeatsRandomOnSmoothLandscape) {
  RiggedEvaluator tevo_eval(GradientLandscape);
  RiggedEvaluator rs_eval(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  auto tevo = MakeSearchAlgorithm("TEVO_H").value();
  auto rs = MakeSearchAlgorithm("RS").value();
  const long kBudget = 120;
  double tevo_total = 0.0, rs_total = 0.0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    tevo_total += RunSearch(tevo.get(), &tevo_eval, space, {Budget::Evaluations(kBudget), seed})
                      .best_accuracy;
    rs_total += RunSearch(rs.get(), &rs_eval, space, {Budget::Evaluations(kBudget), seed})
                    .best_accuracy;
  }
  // Mutation-based exploitation compounds Binarizer steps; uniform random
  // sampling of length-7 all-Binarizer pipelines is a 7^-7 event.
  EXPECT_GT(tevo_total, rs_total);
  EXPECT_NEAR(tevo_total / 5.0, BestGradientScore(), 0.08);
}

TEST(RiggedAnneal, NeverLosesItsBestState) {
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  auto anneal = MakeSearchAlgorithm("Anneal").value();
  SearchResult result = RunSearch(anneal.get(), &evaluator, space, {Budget::Evaluations(200), 43});
  EXPECT_GE(result.best_accuracy, 0.9);
}

TEST(RiggedReinforce, PolicyLearnsTheRewardedOperator) {
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  Reinforce reinforce;
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(400), 44});
  reinforce.Initialize(&context);
  while (!context.BudgetExhausted()) reinforce.Iterate(&context);
  // Binarizer is operator 0 in the canonical order; position-0 policy
  // mass on it must exceed uniform (1/8 over 7 ops + stop).
  std::vector<double> policy = reinforce.PolicyProbabilities(0);
  EXPECT_GT(policy[0], 2.0 / 8.0);
  EXPECT_EQ(std::max_element(policy.begin(), policy.end()) - policy.begin(),
            0);
}

TEST(RiggedEnas, SampledQualityImproves) {
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  auto enas = MakeSearchAlgorithm("ENAS").value();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(400), 45});
  enas->Initialize(&context);
  while (!context.BudgetExhausted()) enas->Iterate(&context);
  const std::vector<Evaluation>& history = context.history();
  ASSERT_GE(history.size(), 100u);
  double early = 0.0, late = 0.0;
  const size_t window = 50;
  for (size_t i = 0; i < window; ++i) {
    early += history[i].accuracy;
    late += history[history.size() - 1 - i].accuracy;
  }
  EXPECT_GT(late, early) << "controller failed to improve its samples";
}

TEST(RiggedHyperband, HalvingPromotesTheTrueBest) {
  // Budget-independent landscape: partial scores equal full scores, so
  // successive halving must promote the true rung winner.
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  auto hyperband = MakeSearchAlgorithm("HYPERBAND").value();
  SearchResult result = RunSearch(hyperband.get(), &evaluator, space, {Budget::Evaluations(120), 46});
  // The final (full-budget) answer can never score below the best
  // partial observation, because scores are budget-independent here.
  EXPECT_GE(result.best_accuracy, 0.6);
}

TEST(RiggedSurrogates, ModelBasedSearchExploitsStructure) {
  for (const char* name : {"SMAC", "TPE"}) {
    RiggedEvaluator evaluator(GradientLandscape);
    SearchSpace space = SearchSpace::Default();
    auto algorithm = MakeSearchAlgorithm(name).value();
    SearchResult result = RunSearch(algorithm.get(), &evaluator, space, {Budget::Evaluations(150), 47});
    EXPECT_GE(result.best_accuracy, 0.85) << name;
  }
}

/// Landscape B ("deceptive"): good length-1 pipelines but the optimum
/// hides at exact sequence [Normalizer, Binarizer].
double DeceptiveLandscape(const PipelineSpec& pipeline) {
  if (pipeline.size() == 2 &&
      pipeline.steps[0].kind == PreprocessorKind::kNormalizer &&
      pipeline.steps[1].kind == PreprocessorKind::kBinarizer) {
    return 1.0;
  }
  if (pipeline.size() == 1) return 0.6;
  return 0.3;
}

TEST(RiggedDeceptive, RandomSearchFindsNeedleWithEnoughBudget) {
  // P(hit) per uniform sample = P(len=2) * 1/49 = 1/343; 1500 samples
  // hit with probability ~98.7%.
  RiggedEvaluator evaluator(DeceptiveLandscape);
  SearchSpace space = SearchSpace::Default();
  auto rs = MakeSearchAlgorithm("RS").value();
  SearchResult result = RunSearch(rs.get(), &evaluator, space, {Budget::Evaluations(1500), 48});
  EXPECT_DOUBLE_EQ(result.best_accuracy, 1.0);
}

TEST(RiggedDeceptive, BaselineReporting) {
  RiggedEvaluator evaluator(DeceptiveLandscape);
  SearchSpace space = SearchSpace::Default();
  auto rs = MakeSearchAlgorithm("RS").value();
  SearchResult result = RunSearch(rs.get(), &evaluator, space, {Budget::Evaluations(10), 49});
  EXPECT_DOUBLE_EQ(result.baseline_accuracy,
                   DeceptiveLandscape(PipelineSpec{}));
}

TEST(RiggedFramework, HistoryMatchesLandscapeExactly) {
  RiggedEvaluator evaluator(GradientLandscape);
  SearchSpace space = SearchSpace::Default();
  SearchContext context(&space, &evaluator,
                        SearchOptions{Budget::Evaluations(50), 50});
  Rng rng(50);
  for (int i = 0; i < 50; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    std::optional<double> accuracy = context.Evaluate(pipeline);
    ASSERT_TRUE(accuracy.has_value());
    EXPECT_DOUBLE_EQ(*accuracy, GradientLandscape(pipeline));
  }
  for (const Evaluation& evaluation : context.history()) {
    EXPECT_DOUBLE_EQ(evaluation.accuracy,
                     GradientLandscape(evaluation.pipeline));
  }
}

}  // namespace
}  // namespace autofp
