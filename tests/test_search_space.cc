#include "core/search_space.h"

#include <set>

#include <gtest/gtest.h>

namespace autofp {
namespace {

TEST(SearchSpace, DefaultShape) {
  SearchSpace space = SearchSpace::Default();
  EXPECT_EQ(space.num_operators(), 7u);
  EXPECT_EQ(space.max_pipeline_length(), 7u);
}

TEST(SearchSpace, DefaultTotalPipelinesIsAboutOneMillion) {
  // The paper: the default Auto-FP space contains ~1M pipelines
  // (sum_{i=1..7} 7^i = 960,799).
  SearchSpace space = SearchSpace::Default();
  EXPECT_DOUBLE_EQ(space.TotalPipelines(), 960799.0);
}

TEST(SearchSpace, SampleUniformWithinBounds) {
  SearchSpace space = SearchSpace::Default(4);
  Rng rng(1);
  std::set<size_t> lengths;
  for (int i = 0; i < 500; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    EXPECT_GE(pipeline.size(), 1u);
    EXPECT_LE(pipeline.size(), 4u);
    lengths.insert(pipeline.size());
  }
  EXPECT_EQ(lengths.size(), 4u);  // all lengths appear.
}

TEST(SearchSpace, MutatePreservesBounds) {
  SearchSpace space = SearchSpace::Default(3);
  Rng rng(2);
  PipelineSpec pipeline = space.SampleUniform(&rng);
  for (int i = 0; i < 300; ++i) {
    pipeline = space.Mutate(pipeline, &rng);
    EXPECT_GE(pipeline.size(), 1u);
    EXPECT_LE(pipeline.size(), 3u);
  }
}

TEST(SearchSpace, MutateChangesSomething) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(3);
  PipelineSpec pipeline = space.SampleUniform(&rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    PipelineSpec child = space.Mutate(pipeline, &rng);
    if (!(child == pipeline)) ++changed;
  }
  // Replacement can re-pick the same operator, but most mutations differ.
  EXPECT_GT(changed, 35);
}

TEST(SearchSpace, EncodeDecodeRoundTrip) {
  SearchSpace space = SearchSpace::Default();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    EXPECT_TRUE(space.Decode(space.Encode(pipeline)) == pipeline);
  }
}

TEST(SearchSpace, EncodePadded) {
  SearchSpace space = SearchSpace::Default(5);
  PipelineSpec pipeline =
      PipelineSpec::FromKinds({PreprocessorKind::kBinarizer,
                               PreprocessorKind::kStandardScaler});
  std::vector<double> padded = space.EncodePadded(pipeline);
  ASSERT_EQ(padded.size(), 5u);
  EXPECT_DOUBLE_EQ(padded[0], 0.0);   // Binarizer is operator 0.
  EXPECT_DOUBLE_EQ(padded[1], 6.0);   // StandardScaler is operator 6.
  EXPECT_DOUBLE_EQ(padded[2], -1.0);  // padding.
}

TEST(ParameterSpace, LowCardinalityCountsMatchTable6) {
  ParameterSpace space = ParameterSpace::LowCardinality();
  EXPECT_EQ(space.binarizer_thresholds.size(), 6u);
  EXPECT_EQ(space.norms.size(), 3u);
  EXPECT_EQ(space.standard_with_mean.size(), 2u);
  EXPECT_EQ(space.power_standardize.size(), 2u);
  EXPECT_EQ(space.quantile_n_quantiles.size(), 8u);
  // Paper: 6+1+1+3+2+2+16 = 31 One-step operators.
  EXPECT_EQ(space.OneStepOperatorCount(), 31u);
}

TEST(ParameterSpace, HighCardinalityCountsMatchTable7) {
  ParameterSpace space = ParameterSpace::HighCardinality();
  EXPECT_EQ(space.binarizer_thresholds.size(), 21u);    // 0..1 step 0.05.
  EXPECT_EQ(space.quantile_n_quantiles.size(), 1991u);  // 10..2000 step 1.
  size_t total = space.OneStepOperatorCount();
  // QuantileTransformer variants dominate the flattened space (~99%),
  // the mechanism behind the paper's One-step failure in Figure 9.
  double quantile_fraction = 1991.0 * 2.0 / static_cast<double>(total);
  EXPECT_GT(quantile_fraction, 0.99);
}

TEST(ParameterSpace, SampleAssignmentCoversAllKinds) {
  ParameterSpace space = ParameterSpace::LowCardinality();
  Rng rng(5);
  std::vector<PreprocessorConfig> assignment = space.SampleAssignment(&rng);
  ASSERT_EQ(assignment.size(), 7u);
  std::set<PreprocessorKind> kinds;
  for (const PreprocessorConfig& config : assignment) {
    kinds.insert(config.kind);
  }
  EXPECT_EQ(kinds.size(), 7u);
}

TEST(ParameterSpace, SampleAssignmentUsesAllowedValues) {
  ParameterSpace space = ParameterSpace::LowCardinality();
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    for (const PreprocessorConfig& config : space.SampleAssignment(&rng)) {
      if (config.kind == PreprocessorKind::kBinarizer) {
        bool allowed = false;
        for (double t : space.binarizer_thresholds) {
          if (t == config.threshold) allowed = true;
        }
        EXPECT_TRUE(allowed) << config.threshold;
      }
      if (config.kind == PreprocessorKind::kQuantileTransformer) {
        bool allowed = false;
        for (int q : space.quantile_n_quantiles) {
          if (q == config.n_quantiles) allowed = true;
        }
        EXPECT_TRUE(allowed);
      }
    }
  }
}

TEST(OneStepSpace, FlattensLowCardinality) {
  SearchSpace space = OneStepSpace(ParameterSpace::LowCardinality());
  EXPECT_EQ(space.num_operators(), 31u);
  // Operator descriptions must be unique (distinct parameterizations).
  std::set<std::string> descriptions;
  for (const PreprocessorConfig& op : space.operators()) {
    descriptions.insert(op.ToString());
  }
  EXPECT_EQ(descriptions.size(), 31u);
}

TEST(OneStepSpace, HighCardinalityIsQuantileDominated) {
  SearchSpace space = OneStepSpace(ParameterSpace::HighCardinality());
  size_t quantiles = 0;
  for (const PreprocessorConfig& op : space.operators()) {
    if (op.kind == PreprocessorKind::kQuantileTransformer) ++quantiles;
  }
  EXPECT_EQ(quantiles, 2u * 1991u);
  Rng rng(7);
  // A uniform sample is overwhelmingly QuantileTransformer-only.
  int all_quantile = 0;
  for (int i = 0; i < 100; ++i) {
    PipelineSpec pipeline = space.SampleUniform(&rng);
    bool all = true;
    for (const PreprocessorConfig& step : pipeline.steps) {
      if (step.kind != PreprocessorKind::kQuantileTransformer) all = false;
    }
    all_quantile += all;
  }
  EXPECT_GT(all_quantile, 90);
}

TEST(FixedAssignmentSpace, UsesGivenConfigs) {
  ParameterSpace parameters = ParameterSpace::LowCardinality();
  Rng rng(8);
  std::vector<PreprocessorConfig> assignment =
      parameters.SampleAssignment(&rng);
  SearchSpace space = FixedAssignmentSpace(assignment, 4);
  EXPECT_EQ(space.num_operators(), 7u);
  EXPECT_EQ(space.max_pipeline_length(), 4u);
  EXPECT_TRUE(space.operator_at(0) == assignment[0]);
}

TEST(SearchSpaceDeath, DecodeOutOfRangeAborts) {
  SearchSpace space = SearchSpace::Default();
  EXPECT_DEATH(space.Decode({99}), "CHECK failed");
}

}  // namespace
}  // namespace autofp
