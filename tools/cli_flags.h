#ifndef AUTOFP_TOOLS_CLI_FLAGS_H_
#define AUTOFP_TOOLS_CLI_FLAGS_H_

/// Shared flag-parsing helpers for the autofp command-line tools.
///
/// Every tool parses `--flag value` pairs in a hand-rolled loop; these
/// helpers keep the loops but make the value handling — advance, convert,
/// bounds-check, complain — one call per flag with uniform error messages:
///
///   for (int i = 2; i < argc; ++i) {
///     std::string arg = argv[i];
///     if (arg == "--threads") {
///       if (!cli::ParseInt(argc, argv, &i, "--threads", 1, &threads))
///         return false;
///     } else ...
///   }
///
/// All parsers print to stderr and return false on a missing value, a
/// non-numeric value, or a value below the given minimum; the caller
/// turns false into its usage-error exit.

#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace autofp {
namespace cli {

/// The value after argv[*i], advancing *i past it; nullptr (with
/// "error: FLAG needs a value") when the command line ends first.
inline const char* NextValue(int argc, char** argv, int* i,
                             const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "error: %s needs a value\n", flag);
    return nullptr;
  }
  return argv[++*i];
}

inline bool ParseString(int argc, char** argv, int* i, const char* flag,
                        std::string* out) {
  const char* value = NextValue(argc, argv, i, flag);
  if (value == nullptr) return false;
  *out = value;
  return true;
}

/// Pass min_value = LONG_MIN for an unbounded flag.
inline bool ParseLong(int argc, char** argv, int* i, const char* flag,
                      long min_value, long* out) {
  const char* value = NextValue(argc, argv, i, flag);
  if (value == nullptr) return false;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                 value);
    return false;
  }
  if (parsed < min_value) {
    std::fprintf(stderr, "error: %s must be >= %ld\n", flag, min_value);
    return false;
  }
  *out = parsed;
  return true;
}

inline bool ParseInt(int argc, char** argv, int* i, const char* flag,
                     long min_value, int* out) {
  long parsed = 0;
  if (!ParseLong(argc, argv, i, flag, min_value, &parsed)) return false;
  *out = static_cast<int>(parsed);
  return true;
}

inline bool ParseSize(int argc, char** argv, int* i, const char* flag,
                      long min_value, size_t* out) {
  long parsed = 0;
  if (!ParseLong(argc, argv, i, flag, min_value, &parsed)) return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

inline bool ParseU64(int argc, char** argv, int* i, const char* flag,
                     uint64_t* out) {
  const char* value = NextValue(argc, argv, i, flag);
  if (value == nullptr) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                 value);
    return false;
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

inline bool ParseDouble(int argc, char** argv, int* i, const char* flag,
                        double* out) {
  const char* value = NextValue(argc, argv, i, flag);
  if (value == nullptr) return false;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "error: %s needs a number, got '%s'\n", flag,
                 value);
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace cli
}  // namespace autofp

#endif  // AUTOFP_TOOLS_CLI_FLAGS_H_
