/// autofp — command-line pipeline search.
///
/// Searches for the best feature-preprocessing pipeline for a dataset,
/// with any of the paper's 15 algorithms, and prints the result.
///
/// Usage:
///   autofp --data <file.csv | suite:NAME> [--model LR|XGB|MLP]
///          [--algorithm NAME] [--budget N] [--seconds S] [--seed N]
///          [--max-length N] [--space default|low|high] [--two-step]
///          [--train-fraction F] [--fault-rate F] [--slowdown-rate F]
///          [--slowdown-seconds S] [--eval-deadline S] [--max-retries N]
///          [--journal FILE] [--resume] [--export-artifact FILE] [--list]
///   autofp --data <file.csv> --apply "<pipeline>" --out <file.csv>
///   autofp --dump-journal <file.journal>
///
/// The CSV's last column is the class label; pass suite:NAME to use a
/// built-in benchmark dataset (see --list). With --apply, no search runs:
/// the given pipeline (PipelineSpec::ToString syntax, e.g.
/// "StandardScaler -> Binarizer(threshold=0.2)") is fitted to the data and
/// the transformed table (plus the label column) is written to --out.
///
/// Durable runs: --journal appends every completed evaluation to an
/// fsync'd write-ahead journal; --resume replays a journal after a crash
/// or interrupt so the search continues where it stopped. SIGINT/SIGTERM
/// stop the search gracefully at the next evaluation boundary (report
/// still printed, journal flushed). The env var AUTOFP_CRASH_AFTER_APPENDS
/// arms a deterministic crash point for the crash-injection harness.
///
/// Exit codes: 0 completed with >= 1 successful evaluation; 1 runtime
/// error; 2 usage error; 3 interrupted by signal; 4 completed but every
/// evaluation failed; 86 injected crash point.

#include <unistd.h>

#include <bit>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/auto_fp.h"
#include "dist/coordinator.h"
#include "dist/shared_dataset.h"
#include "dist/worker.h"
#include "serve/artifact.h"
#include "preprocess/pipeline_parse.h"
#include "cli_flags.h"
#include "util/csv.h"
#include "search/registry.h"
#include "search/two_step.h"

namespace {

using namespace autofp;

volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void HandleStopSignal(int) { g_stop_requested = 1; }

struct Options {
  std::string data;
  std::string model = "LR";
  std::string algorithm = "PBT";
  long budget = 200;
  double seconds = -1.0;
  uint64_t seed = 42;
  size_t max_length = 7;
  std::string space = "default";
  bool two_step = false;
  double train_fraction = 1.0;
  double fault_rate = 0.0;
  double slowdown_rate = 0.0;
  double slowdown_seconds = 0.05;
  double eval_deadline = -1.0;
  int max_retries = 2;
  int threads = 1;
  double cache_mb = 0.0;
  int workers = 0;          ///< > 0: distributed multi-process evaluation.
  size_t lease_size = 4;    ///< requests per worker lease.
  double lease_deadline = 30.0;  ///< straggler revocation deadline (s).
  bool list = false;
  // Internal worker entrypoint (spawned by the coordinator, never typed
  // by a user): run the dist worker loop on an inherited socketpair fd.
  bool dist_worker = false;
  int worker_fd = -1;
  int worker_index = 0;
  std::string worker_dataset;  ///< shared-dataset file to map.
  std::string apply;  ///< pipeline to apply instead of searching.
  std::string out;    ///< output CSV for --apply.
  std::string export_artifact;  ///< serve artifact path (after search).
  std::string journal;       ///< write-ahead run journal path.
  bool resume = false;       ///< replay the journal before evaluating.
  std::string dump_journal;  ///< print a journal and exit.
};

void PrintUsage() {
  std::printf(
      "usage: autofp --data <file.csv | suite:NAME> [options]\n"
      "  --model LR|XGB|MLP       downstream classifier (default LR)\n"
      "  --algorithm NAME         one of the 15 algorithms (default PBT)\n"
      "  --budget N               evaluation budget (default 200)\n"
      "  --seconds S              wall-clock budget (overrides --budget)\n"
      "  --seed N                 RNG seed (default 42)\n"
      "  --max-length N           max pipeline length (default 7)\n"
      "  --space default|low|high search space (Table 6/7 extensions)\n"
      "  --two-step               use the Two-step extension (Section 6.2)\n"
      "  --train-fraction F       subsample training rows to F (0,1]\n"
      "  --fault-rate F           inject evaluation faults with prob. F\n"
      "  --slowdown-rate F        inject evaluation slowdowns with prob. F\n"
      "  --slowdown-seconds S     simulated slowdown length (default 0.05)\n"
      "  --eval-deadline S        per-evaluation deadline in seconds\n"
      "  --max-retries N          retries for transient faults (default 2)\n"
      "  --threads N              parallel evaluation threads (default 1)\n"
      "  --cache-mb MB            evaluation-cache budget in MiB (default 0)\n"
      "  --workers N              evaluate on N worker processes (crash/\n"
      "                           straggler tolerant; excludes --threads)\n"
      "  --lease-size N           requests per worker lease (default 4)\n"
      "  --lease-deadline S       straggler revocation deadline (default 30)\n"
      "  --export-artifact FILE   after the search, refit the winning\n"
      "                           pipeline on the full dataset, train the\n"
      "                           downstream model, and write a serving\n"
      "                           artifact (score it with autofp_serve)\n"
      "  --journal FILE           append evaluations to a crash-safe journal\n"
      "  --resume                 replay FILE before evaluating (needs --journal)\n"
      "  --dump-journal FILE      print a journal's records and exit\n"
      "  --list                   list built-in datasets and algorithms\n"
      "  --apply \"<pipeline>\"     fit+apply a pipeline instead of searching\n"
      "  --out FILE               output CSV for --apply\n"
      "exit codes: 0 ok | 1 error | 2 usage | 3 interrupted | 4 all "
      "evaluations failed\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data") {
      if (!cli::ParseString(argc, argv, &i, "--data", &options->data))
        return false;
    } else if (arg == "--model") {
      if (!cli::ParseString(argc, argv, &i, "--model", &options->model))
        return false;
    } else if (arg == "--algorithm") {
      if (!cli::ParseString(argc, argv, &i, "--algorithm",
                            &options->algorithm))
        return false;
    } else if (arg == "--budget") {
      if (!cli::ParseLong(argc, argv, &i, "--budget", LONG_MIN,
                          &options->budget))
        return false;
    } else if (arg == "--seconds") {
      if (!cli::ParseDouble(argc, argv, &i, "--seconds", &options->seconds))
        return false;
    } else if (arg == "--seed") {
      if (!cli::ParseU64(argc, argv, &i, "--seed", &options->seed))
        return false;
    } else if (arg == "--max-length") {
      if (!cli::ParseSize(argc, argv, &i, "--max-length", 0,
                          &options->max_length))
        return false;
    } else if (arg == "--space") {
      if (!cli::ParseString(argc, argv, &i, "--space", &options->space))
        return false;
    } else if (arg == "--two-step") {
      options->two_step = true;
    } else if (arg == "--train-fraction") {
      if (!cli::ParseDouble(argc, argv, &i, "--train-fraction",
                            &options->train_fraction))
        return false;
    } else if (arg == "--fault-rate") {
      if (!cli::ParseDouble(argc, argv, &i, "--fault-rate",
                            &options->fault_rate))
        return false;
    } else if (arg == "--slowdown-rate") {
      if (!cli::ParseDouble(argc, argv, &i, "--slowdown-rate",
                            &options->slowdown_rate))
        return false;
    } else if (arg == "--slowdown-seconds") {
      if (!cli::ParseDouble(argc, argv, &i, "--slowdown-seconds",
                            &options->slowdown_seconds))
        return false;
    } else if (arg == "--eval-deadline") {
      if (!cli::ParseDouble(argc, argv, &i, "--eval-deadline",
                            &options->eval_deadline))
        return false;
    } else if (arg == "--max-retries") {
      if (!cli::ParseInt(argc, argv, &i, "--max-retries", 0,
                         &options->max_retries))
        return false;
    } else if (arg == "--threads") {
      if (!cli::ParseInt(argc, argv, &i, "--threads", 1, &options->threads))
        return false;
    } else if (arg == "--cache-mb") {
      if (!cli::ParseDouble(argc, argv, &i, "--cache-mb", &options->cache_mb))
        return false;
    } else if (arg == "--workers") {
      if (!cli::ParseInt(argc, argv, &i, "--workers", 0, &options->workers))
        return false;
    } else if (arg == "--lease-size") {
      if (!cli::ParseSize(argc, argv, &i, "--lease-size", 1,
                          &options->lease_size))
        return false;
    } else if (arg == "--lease-deadline") {
      if (!cli::ParseDouble(argc, argv, &i, "--lease-deadline",
                            &options->lease_deadline))
        return false;
    } else if (arg == "--dist-worker") {
      options->dist_worker = true;
    } else if (arg == "--worker-fd") {
      if (!cli::ParseInt(argc, argv, &i, "--worker-fd", 0,
                         &options->worker_fd))
        return false;
    } else if (arg == "--worker-index") {
      if (!cli::ParseInt(argc, argv, &i, "--worker-index", 0,
                         &options->worker_index))
        return false;
    } else if (arg == "--worker-dataset") {
      if (!cli::ParseString(argc, argv, &i, "--worker-dataset",
                            &options->worker_dataset))
        return false;
    } else if (arg == "--export-artifact") {
      if (!cli::ParseString(argc, argv, &i, "--export-artifact",
                            &options->export_artifact))
        return false;
    } else if (arg == "--journal") {
      if (!cli::ParseString(argc, argv, &i, "--journal", &options->journal))
        return false;
    } else if (arg == "--resume") {
      options->resume = true;
    } else if (arg == "--dump-journal") {
      if (!cli::ParseString(argc, argv, &i, "--dump-journal",
                            &options->dump_journal))
        return false;
    } else if (arg == "--apply") {
      if (!cli::ParseString(argc, argv, &i, "--apply", &options->apply))
        return false;
    } else if (arg == "--out") {
      if (!cli::ParseString(argc, argv, &i, "--out", &options->out))
        return false;
    } else if (arg == "--list") {
      options->list = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Determinism-relevant CLI configuration, folded into the journal's
/// options fingerprint so resuming with different flags (different data,
/// algorithm, model, space, fault injection, ...) is rejected instead of
/// silently replaying outcomes the new run would never produce. Threads
/// and cache size stay out: history is invariant to them.
uint64_t CliConfigFingerprint(const Options& options,
                              const SearchOptions& search_options) {
  uint64_t hash = SearchOptionsFingerprint(search_options);
  auto mix_string = [&hash](const std::string& value) {
    hash = Fnv1a64(value.data(), value.size(), hash);
  };
  mix_string(options.data);
  mix_string(options.model);
  mix_string(options.algorithm);
  mix_string(options.space);
  hash = HashCombine(hash, options.two_step ? 1 : 0);
  hash = HashCombine(hash, options.max_length);
  hash = HashCombine(hash, std::bit_cast<uint64_t>(options.train_fraction));
  hash = HashCombine(hash, std::bit_cast<uint64_t>(options.fault_rate));
  hash = HashCombine(hash, std::bit_cast<uint64_t>(options.slowdown_rate));
  hash = HashCombine(hash, std::bit_cast<uint64_t>(options.slowdown_seconds));
  return hash;
}

bool ParseModelKind(const std::string& name, ModelKind* kind) {
  if (name == "LR") {
    *kind = ModelKind::kLogisticRegression;
  } else if (name == "XGB") {
    *kind = ModelKind::kXgboost;
  } else if (name == "MLP") {
    *kind = ModelKind::kMlp;
  } else {
    return false;
  }
  return true;
}

/// Builds the pipeline evaluator exactly as the single-process search
/// does — same seeded split, same train fraction, same fault injector —
/// shared by the search path and the dist worker entrypoint so a worker
/// evaluates byte-identically to an in-process run.
std::unique_ptr<PipelineEvaluator> MakeEvaluator(const Options& options,
                                                 const Dataset& dataset,
                                                 ModelKind model_kind) {
  Rng rng(options.seed);
  TrainValidSplit split = SplitTrainValid(dataset, 0.8, &rng);
  auto evaluator = std::make_unique<PipelineEvaluator>(
      split.train, split.valid, ModelConfig::Defaults(model_kind));
  if (options.train_fraction < 1.0) {
    evaluator->set_global_train_fraction(options.train_fraction);
  }
  if (options.fault_rate > 0.0 || options.slowdown_rate > 0.0) {
    FaultInjectorConfig injector;
    injector.fault_rate = options.fault_rate;
    injector.slowdown_rate = options.slowdown_rate;
    injector.slowdown_seconds = options.slowdown_seconds;
    injector.seed = options.seed ^ 0x5EEDFA17;
    evaluator->AttachFaultInjector(injector);
  }
  return evaluator;
}

/// Full-precision double formatting for flags forwarded to exec'd
/// workers (std::to_string truncates to 6 digits and would desync the
/// worker's fault injector from the coordinator's fingerprint).
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Path of the running binary for spawning workers; /proc/self/exe works
/// regardless of how the coordinator was invoked (PATH lookup, relative
/// cwd), argv[0] is the fallback.
std::string WorkerExecutablePath(const char* argv0) {
  char buffer[4096];
  ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
  return argv0;
}

/// The internal worker entrypoint (--dist-worker): map the shared
/// dataset, rebuild the evaluator, and serve leases until the
/// coordinator shuts down or disappears.
int RunWorkerMode(const Options& options) {
  std::signal(SIGPIPE, SIG_IGN);
  if (options.worker_fd < 0 || options.worker_dataset.empty()) {
    std::fprintf(stderr,
                 "error: --dist-worker requires --worker-fd and "
                 "--worker-dataset\n");
    return 2;
  }
  ModelKind model_kind;
  if (!ParseModelKind(options.model, &model_kind)) {
    std::fprintf(stderr, "error: unknown model '%s'\n",
                 options.model.c_str());
    return 2;
  }
  Result<Dataset> dataset = MapSharedDataset(options.worker_dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", options.worker_index,
                 dataset.status().ToString().c_str());
    return 1;
  }
  const uint64_t fingerprint = DatasetFingerprint(dataset.value());
  std::unique_ptr<PipelineEvaluator> evaluator =
      MakeEvaluator(options, dataset.value(), model_kind);
  WorkerHooks hooks = WorkerHooksFromEnv(options.worker_index);
  return RunDistWorker(options.worker_fd, options.worker_index, fingerprint,
                       evaluator.get(), hooks);
}

/// Canonical, machine-comparable journal listing. Timing fields are
/// deliberately omitted: they are wall-clock noise, and everything printed
/// here must be byte-identical between an uninterrupted run and a
/// crash+resume of the same configuration (scripts/check_crash.sh diffs
/// two of these dumps).
int DumpJournal(const std::string& path) {
  JournalReadResult read = ReadRunJournal(path);
  if (!read.ok()) {
    std::fprintf(stderr, "error reading journal: %s: %s\n",
                 JournalErrorName(read.error),
                 read.status.message().c_str());
    return 1;
  }
  std::printf("journal version %u\n", read.header.version);
  std::printf("options_fp %016" PRIx64 " dataset_fp %016" PRIx64 "\n",
              read.header.options_fingerprint,
              read.header.dataset_fingerprint);
  std::printf("meta %s\n", read.header.meta.c_str());
  std::printf("records %zu\n", read.records.size());
  if (read.dropped_tail_bytes > 0) {
    std::fprintf(stderr, "note: dropped %zu torn-tail bytes\n",
                 read.dropped_tail_bytes);
  }
  for (size_t i = 0; i < read.records.size(); ++i) {
    const JournalRecord& record = read.records[i];
    std::printf("%06zu seed=%016" PRIx64
                " frac=%.17g acc=%.17g failure=%s attempts=%d | %s\n",
                i, record.seed, record.budget_fraction, record.accuracy,
                EvalFailureName(record.failure), record.attempts,
                record.pipeline.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.list) {
    std::printf("built-in datasets (use --data suite:NAME):\n");
    for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
      std::printf("  %-20s %zux%zu, %d classes\n", spec.name.c_str(),
                  spec.rows, spec.cols, spec.num_classes);
    }
    std::printf("algorithms:");
    for (const std::string& name : AllSearchAlgorithmNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (options.dist_worker) return RunWorkerMode(options);
  if (!options.dump_journal.empty()) return DumpJournal(options.dump_journal);
  if (options.resume && options.journal.empty()) {
    std::fprintf(stderr, "error: --resume requires --journal\n");
    return 2;
  }
  if (options.data.empty()) {
    PrintUsage();
    return 2;
  }

  // Load the dataset.
  Result<Dataset> dataset = [&]() -> Result<Dataset> {
    const std::string prefix = "suite:";
    if (options.data.rfind(prefix, 0) == 0) {
      return GetSuiteDataset(options.data.substr(prefix.size()));
    }
    return LoadCsvDataset(options.data, /*has_header=*/true, options.data);
  }();
  if (!dataset.ok()) {
    std::fprintf(stderr, "error loading data: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // Apply mode: fit the given pipeline on the whole dataset and write the
  // transformed features (+ label column) to --out.
  if (!options.apply.empty()) {
    if (options.out.empty()) {
      std::fprintf(stderr, "error: --apply requires --out\n");
      return 2;
    }
    Result<PipelineSpec> pipeline = ParsePipelineSpec(options.apply);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "error parsing pipeline: %s\n",
                   pipeline.status().ToString().c_str());
      return 2;
    }
    const Dataset& data = dataset.value();
    FittedPipeline fitted =
        FittedPipeline::Fit(pipeline.value(), data.features);
    Matrix transformed = fitted.Transform(data.features);
    Matrix table(transformed.rows(), transformed.cols() + 1);
    std::vector<std::string> header;
    for (size_t c = 0; c < transformed.cols(); ++c) {
      header.push_back("f" + std::to_string(c));
      for (size_t r = 0; r < transformed.rows(); ++r) {
        table(r, c) = transformed(r, c);
      }
    }
    header.push_back("label");
    for (size_t r = 0; r < transformed.rows(); ++r) {
      table(r, transformed.cols()) = data.labels[r];
    }
    Status written = WriteCsv(options.out, header, table);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("applied '%s'\nwrote %zu rows x %zu cols to %s\n",
                pipeline.value().ToString().c_str(), table.rows(),
                table.cols(), options.out.c_str());
    return 0;
  }

  ModelKind model_kind = ModelKind::kLogisticRegression;
  if (!ParseModelKind(options.model, &model_kind)) {
    std::fprintf(stderr, "error: unknown model '%s'\n",
                 options.model.c_str());
    return 2;
  }

  std::unique_ptr<PipelineEvaluator> evaluator =
      MakeEvaluator(options, dataset.value(), model_kind);
  Budget budget = options.seconds > 0.0 ? Budget::Seconds(options.seconds)
                                        : Budget::Evaluations(options.budget);
  if (options.eval_deadline > 0.0) {
    budget = budget.WithEvalDeadline(options.eval_deadline);
  }
  SearchOptions search_options;
  search_options.budget = budget;
  search_options.seed = options.seed;
  search_options.fault_policy.max_retries = options.max_retries;
  search_options.num_threads = options.threads > 0 ? options.threads : 1;
  search_options.cache_bytes =
      static_cast<size_t>(options.cache_mb * 1024.0 * 1024.0);

  // Distributed evaluation: spawn --workers worker processes over a
  // shared read-only dataset file; the search journals their merged
  // outcomes through the same coordinator-side choke point, so the
  // journal is byte-identical to a single-process run.
  std::unique_ptr<DistributedEvaluator> dist;
  std::string shared_dataset_path;
  if (options.workers > 0) {
    if (options.threads > 1) {
      std::fprintf(stderr,
                   "error: --workers and --threads are mutually "
                   "exclusive (workers already evaluate in parallel)\n");
      return 2;
    }
    const char* tmpdir = std::getenv("TMPDIR");
    shared_dataset_path =
        std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
        "/autofp_dist_" + std::to_string(static_cast<long>(::getpid())) +
        ".ds";
    Status written = WriteSharedDataset(shared_dataset_path, dataset.value());
    if (!written.ok()) {
      std::fprintf(stderr, "error writing shared dataset: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::vector<std::string> argv_prefix;
    argv_prefix.push_back(WorkerExecutablePath(argv[0]));
    argv_prefix.push_back("--dist-worker");
    argv_prefix.push_back("--worker-dataset");
    argv_prefix.push_back(shared_dataset_path);
    argv_prefix.push_back("--model");
    argv_prefix.push_back(options.model);
    argv_prefix.push_back("--seed");
    argv_prefix.push_back(std::to_string(options.seed));
    if (options.train_fraction < 1.0) {
      argv_prefix.push_back("--train-fraction");
      argv_prefix.push_back(FormatDouble(options.train_fraction));
    }
    if (options.fault_rate > 0.0 || options.slowdown_rate > 0.0) {
      argv_prefix.push_back("--fault-rate");
      argv_prefix.push_back(FormatDouble(options.fault_rate));
      argv_prefix.push_back("--slowdown-rate");
      argv_prefix.push_back(FormatDouble(options.slowdown_rate));
      argv_prefix.push_back("--slowdown-seconds");
      argv_prefix.push_back(FormatDouble(options.slowdown_seconds));
    }
    DistOptions dist_options;
    dist_options.num_workers = options.workers;
    dist_options.lease_size = options.lease_size;
    dist_options.lease_deadline_seconds = options.lease_deadline;
    dist_options.expected_dataset_fingerprint =
        DatasetFingerprint(dataset.value());
    dist = std::make_unique<DistributedEvaluator>(
        evaluator.get(), ExecWorkerSpawner(std::move(argv_prefix)),
        dist_options);
    search_options.num_workers = options.workers;
  }
  EvaluatorInterface* search_evaluator =
      dist != nullptr ? static_cast<EvaluatorInterface*>(dist.get())
                      : evaluator.get();

  // Graceful shutdown: SIGINT/SIGTERM stop the search at the next
  // evaluation boundary; the report below still prints and the journal
  // (already fsync'd per record) is complete up to the stop. SIGPIPE is
  // ignored process-wide so a worker pipe closing mid-write surfaces as
  // a typed EPIPE, never a silent kill.
  search_options.stop_flag = &g_stop_requested;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Durable run: open (or resume) the write-ahead journal.
  std::unique_ptr<RunJournalWriter> journal;
  std::unique_ptr<RunJournalReplay> replay;
  if (!options.journal.empty()) {
    const uint64_t dataset_fp = DatasetFingerprint(dataset.value());
    const uint64_t options_fp = CliConfigFingerprint(options, search_options);
    RunJournalOptions journal_options;
    journal_options.meta = "autofp data=" + options.data +
                           " algorithm=" + options.algorithm +
                           " model=" + options.model +
                           " space=" + options.space +
                           " seed=" + std::to_string(options.seed);
    if (const char* crash_env = std::getenv("AUTOFP_CRASH_AFTER_APPENDS")) {
      journal_options.crash_after_appends = std::atoi(crash_env);
    }
    if (options.resume) {
      JournalReadResult read = ReadRunJournal(options.journal);
      if (!read.ok()) {
        std::fprintf(stderr, "error: cannot resume from '%s': %s: %s\n",
                     options.journal.c_str(), JournalErrorName(read.error),
                     read.status.message().c_str());
        return 1;
      }
      Status detail;
      JournalError mismatch =
          ValidateJournalHeader(read.header, options_fp, dataset_fp, &detail);
      if (mismatch != JournalError::kNone) {
        std::fprintf(stderr, "error: cannot resume from '%s': %s: %s\n",
                     options.journal.c_str(), JournalErrorName(mismatch),
                     detail.message().c_str());
        return 1;
      }
      std::printf("resuming: %zu recorded evaluations from %s",
                  read.records.size(), options.journal.c_str());
      if (read.dropped_tail_bytes > 0) {
        std::printf(" (%zu torn-tail bytes dropped)", read.dropped_tail_bytes);
      }
      std::printf("\n");
      replay = std::make_unique<RunJournalReplay>(read.records);
      Result<std::unique_ptr<RunJournalWriter>> writer =
          RunJournalWriter::OpenForAppend(options.journal, journal_options);
      if (!writer.ok()) {
        std::fprintf(stderr, "error: %s\n", writer.status().ToString().c_str());
        return 1;
      }
      journal = std::move(writer).value();
    } else {
      Result<std::unique_ptr<RunJournalWriter>> writer = RunJournalWriter::Create(
          options.journal, options_fp, dataset_fp, journal_options);
      if (!writer.ok()) {
        std::fprintf(stderr, "error: %s\n", writer.status().ToString().c_str());
        return 1;
      }
      journal = std::move(writer).value();
    }
    search_options.journal = journal.get();
    search_options.replay = replay.get();
  }

  std::printf("dataset: %s (%zu rows x %zu cols, %d classes)\n",
              dataset.value().name.c_str(), dataset.value().num_rows(),
              dataset.value().num_cols(), dataset.value().num_classes);
  std::printf("model: %s | algorithm: %s%s | space: %s\n",
              options.model.c_str(), options.algorithm.c_str(),
              options.two_step ? " (Two-step)" : "", options.space.c_str());

  SearchResult result;
  if (options.space == "default") {
    if (options.two_step) {
      std::fprintf(stderr,
                   "error: --two-step requires --space low or high\n");
      return 2;
    }
    Result<std::unique_ptr<SearchAlgorithm>> algorithm =
        MakeSearchAlgorithm(options.algorithm);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   algorithm.status().ToString().c_str());
      return 2;
    }
    SearchSpace space = SearchSpace::Default(options.max_length);
    result = RunSearch(algorithm.value().get(), search_evaluator, space,
                       search_options);
  } else {
    ParameterSpace parameters = options.space == "low"
                                    ? ParameterSpace::LowCardinality()
                                    : ParameterSpace::HighCardinality();
    if (options.space != "low" && options.space != "high") {
      std::fprintf(stderr, "error: unknown space '%s'\n",
                   options.space.c_str());
      return 2;
    }
    if (options.two_step) {
      TwoStepConfig config;
      config.algorithm = options.algorithm;
      config.max_pipeline_length = options.max_length;
      result = RunTwoStep(config, search_evaluator, parameters,
                          search_options);
    } else {
      result = RunOneStep(options.algorithm, search_evaluator, parameters,
                          search_options, options.max_length);
    }
  }

  std::printf("\nno-FP baseline : %.4f\n", result.baseline_accuracy);
  std::printf("best accuracy  : %.4f (%+.2f%%)\n", result.best_accuracy,
              100.0 * (result.best_accuracy - result.baseline_accuracy));
  std::printf("best pipeline  : %s\n",
              result.best_pipeline.ToString().c_str());
  std::printf("evaluations    : %ld (cost %.1f) in %.2fs | pick %.2fs, "
              "prep %.2fs, train %.2fs\n",
              result.num_evaluations, result.evaluation_cost,
              result.elapsed_seconds, result.pick_seconds,
              result.prep_seconds, result.train_seconds);
  std::printf("failures       : %ld failed attempts, %ld retries, "
              "%ld quarantined, %ld quarantine hits\n",
              result.num_failures, result.num_retries,
              result.num_quarantined, result.num_quarantine_hits);
  if (search_options.num_threads > 1 || search_options.cache_bytes > 0) {
    std::printf("engine         : %d threads | result cache %ld/%ld hits | "
                "prefix cache %ld/%ld hits\n",
                result.num_threads, result.result_cache_hits,
                result.result_cache_hits + result.result_cache_misses,
                result.transform_cache_hits,
                result.transform_cache_hits + result.transform_cache_misses);
  }
  if (journal != nullptr) {
    std::printf("journal        : %ld replayed, %ld appended -> %s\n",
                result.num_replayed, journal->num_appends(),
                journal->path().c_str());
  }
  if (dist != nullptr) {
    dist->Shutdown();
    const DistStats& ds = dist->stats();
    std::printf("workers        : %d workers | %ld spawned, %ld crashes, "
                "%ld stragglers, %ld corrupt, %ld re-leases, %ld stale, "
                "%ld local-fallback, %ld worker-lost\n",
                options.workers, ds.workers_spawned, ds.worker_crashes,
                ds.straggler_revocations, ds.corrupt_frame_revocations,
                ds.re_leases, ds.stale_results, ds.local_fallback_evals,
                ds.worker_lost_evals);
    ::unlink(shared_dataset_path.c_str());
  }
  // Deployment: refit the winning pipeline on the full dataset (train +
  // valid -- all the data the search saw), train the downstream model on
  // the transformed features, and write the serving artifact.
  if (!options.export_artifact.empty()) {
    if (result.num_successes == 0) {
      std::fprintf(stderr,
                   "warning: skipping --export-artifact: no successful "
                   "evaluation to export\n");
    } else {
      Result<ArtifactSchema> exported =
          ExportArtifact(options.export_artifact, dataset.value(),
                         result.best_pipeline,
                         ModelConfig::Defaults(model_kind));
      if (!exported.ok()) {
        std::fprintf(stderr, "error exporting artifact: %s\n",
                     exported.status().ToString().c_str());
        return 1;
      }
      std::printf("artifact       : %s (%" PRIu64 " feature cols, "
                  "%d classes, dataset fp %016" PRIx64 ")\n",
                  options.export_artifact.c_str(),
                  exported.value().input_cols, exported.value().num_classes,
                  exported.value().dataset_fingerprint);
    }
  }
  if (result.interrupted) {
    std::printf("interrupted    : stopped by signal at an evaluation "
                "boundary%s\n",
                journal != nullptr ? "; journal flushed, rerun with --resume"
                                   : "");
    return 3;
  }
  if (result.num_successes == 0) {
    std::fprintf(stderr,
                 "no successful evaluation: all %ld evaluations failed "
                 "(%ld failed attempts); the reported best is only the "
                 "no-FP/penalty fallback\n",
                 result.num_evaluations, result.num_failures);
    return 4;
  }
  return 0;
}
