/// autofp — command-line pipeline search.
///
/// Searches for the best feature-preprocessing pipeline for a dataset,
/// with any of the paper's 15 algorithms, and prints the result.
///
/// Usage:
///   autofp --data <file.csv | suite:NAME> [--model LR|XGB|MLP]
///          [--algorithm NAME] [--budget N] [--seconds S] [--seed N]
///          [--max-length N] [--space default|low|high] [--two-step]
///          [--train-fraction F] [--fault-rate F] [--slowdown-rate F]
///          [--slowdown-seconds S] [--eval-deadline S] [--max-retries N]
///          [--list]
///   autofp --data <file.csv> --apply "<pipeline>" --out <file.csv>
///
/// The CSV's last column is the class label; pass suite:NAME to use a
/// built-in benchmark dataset (see --list). With --apply, no search runs:
/// the given pipeline (PipelineSpec::ToString syntax, e.g.
/// "StandardScaler -> Binarizer(threshold=0.2)") is fitted to the data and
/// the transformed table (plus the label column) is written to --out.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/auto_fp.h"
#include "preprocess/pipeline_parse.h"
#include "util/csv.h"
#include "search/registry.h"
#include "search/two_step.h"

namespace {

using namespace autofp;

struct Options {
  std::string data;
  std::string model = "LR";
  std::string algorithm = "PBT";
  long budget = 200;
  double seconds = -1.0;
  uint64_t seed = 42;
  size_t max_length = 7;
  std::string space = "default";
  bool two_step = false;
  double train_fraction = 1.0;
  double fault_rate = 0.0;
  double slowdown_rate = 0.0;
  double slowdown_seconds = 0.05;
  double eval_deadline = -1.0;
  int max_retries = 2;
  int threads = 1;
  double cache_mb = 0.0;
  bool list = false;
  std::string apply;  ///< pipeline to apply instead of searching.
  std::string out;    ///< output CSV for --apply.
};

void PrintUsage() {
  std::printf(
      "usage: autofp --data <file.csv | suite:NAME> [options]\n"
      "  --model LR|XGB|MLP       downstream classifier (default LR)\n"
      "  --algorithm NAME         one of the 15 algorithms (default PBT)\n"
      "  --budget N               evaluation budget (default 200)\n"
      "  --seconds S              wall-clock budget (overrides --budget)\n"
      "  --seed N                 RNG seed (default 42)\n"
      "  --max-length N           max pipeline length (default 7)\n"
      "  --space default|low|high search space (Table 6/7 extensions)\n"
      "  --two-step               use the Two-step extension (Section 6.2)\n"
      "  --train-fraction F       subsample training rows to F (0,1]\n"
      "  --fault-rate F           inject evaluation faults with prob. F\n"
      "  --slowdown-rate F        inject evaluation slowdowns with prob. F\n"
      "  --slowdown-seconds S     simulated slowdown length (default 0.05)\n"
      "  --eval-deadline S        per-evaluation deadline in seconds\n"
      "  --max-retries N          retries for transient faults (default 2)\n"
      "  --threads N              parallel evaluation threads (default 1)\n"
      "  --cache-mb MB            evaluation-cache budget in MiB (default 0)\n"
      "  --list                   list built-in datasets and algorithms\n"
      "  --apply \"<pipeline>\"     fit+apply a pipeline instead of searching\n"
      "  --out FILE               output CSV for --apply\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--data") {
      const char* v = next("--data");
      if (!v) return false;
      options->data = v;
    } else if (arg == "--model") {
      const char* v = next("--model");
      if (!v) return false;
      options->model = v;
    } else if (arg == "--algorithm") {
      const char* v = next("--algorithm");
      if (!v) return false;
      options->algorithm = v;
    } else if (arg == "--budget") {
      const char* v = next("--budget");
      if (!v) return false;
      options->budget = std::atol(v);
    } else if (arg == "--seconds") {
      const char* v = next("--seconds");
      if (!v) return false;
      options->seconds = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-length") {
      const char* v = next("--max-length");
      if (!v) return false;
      options->max_length = std::strtoul(v, nullptr, 10);
    } else if (arg == "--space") {
      const char* v = next("--space");
      if (!v) return false;
      options->space = v;
    } else if (arg == "--two-step") {
      options->two_step = true;
    } else if (arg == "--train-fraction") {
      const char* v = next("--train-fraction");
      if (!v) return false;
      options->train_fraction = std::atof(v);
    } else if (arg == "--fault-rate") {
      const char* v = next("--fault-rate");
      if (!v) return false;
      options->fault_rate = std::atof(v);
    } else if (arg == "--slowdown-rate") {
      const char* v = next("--slowdown-rate");
      if (!v) return false;
      options->slowdown_rate = std::atof(v);
    } else if (arg == "--slowdown-seconds") {
      const char* v = next("--slowdown-seconds");
      if (!v) return false;
      options->slowdown_seconds = std::atof(v);
    } else if (arg == "--eval-deadline") {
      const char* v = next("--eval-deadline");
      if (!v) return false;
      options->eval_deadline = std::atof(v);
    } else if (arg == "--max-retries") {
      const char* v = next("--max-retries");
      if (!v) return false;
      options->max_retries = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (!v) return false;
      options->threads = std::atoi(v);
    } else if (arg == "--cache-mb") {
      const char* v = next("--cache-mb");
      if (!v) return false;
      options->cache_mb = std::atof(v);
    } else if (arg == "--apply") {
      const char* v = next("--apply");
      if (!v) return false;
      options->apply = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      options->out = v;
    } else if (arg == "--list") {
      options->list = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.list) {
    std::printf("built-in datasets (use --data suite:NAME):\n");
    for (const SyntheticSpec& spec : BenchmarkSuiteSpecs()) {
      std::printf("  %-20s %zux%zu, %d classes\n", spec.name.c_str(),
                  spec.rows, spec.cols, spec.num_classes);
    }
    std::printf("algorithms:");
    for (const std::string& name : AllSearchAlgorithmNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
    return 0;
  }
  if (options.data.empty()) {
    PrintUsage();
    return 2;
  }

  // Load the dataset.
  Result<Dataset> dataset = [&]() -> Result<Dataset> {
    const std::string prefix = "suite:";
    if (options.data.rfind(prefix, 0) == 0) {
      return GetSuiteDataset(options.data.substr(prefix.size()));
    }
    return LoadCsvDataset(options.data, /*has_header=*/true, options.data);
  }();
  if (!dataset.ok()) {
    std::fprintf(stderr, "error loading data: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // Apply mode: fit the given pipeline on the whole dataset and write the
  // transformed features (+ label column) to --out.
  if (!options.apply.empty()) {
    if (options.out.empty()) {
      std::fprintf(stderr, "error: --apply requires --out\n");
      return 2;
    }
    Result<PipelineSpec> pipeline = ParsePipelineSpec(options.apply);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "error parsing pipeline: %s\n",
                   pipeline.status().ToString().c_str());
      return 2;
    }
    const Dataset& data = dataset.value();
    FittedPipeline fitted =
        FittedPipeline::Fit(pipeline.value(), data.features);
    Matrix transformed = fitted.Transform(data.features);
    Matrix table(transformed.rows(), transformed.cols() + 1);
    std::vector<std::string> header;
    for (size_t c = 0; c < transformed.cols(); ++c) {
      header.push_back("f" + std::to_string(c));
      for (size_t r = 0; r < transformed.rows(); ++r) {
        table(r, c) = transformed(r, c);
      }
    }
    header.push_back("label");
    for (size_t r = 0; r < transformed.rows(); ++r) {
      table(r, transformed.cols()) = data.labels[r];
    }
    Status written = WriteCsv(options.out, header, table);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("applied '%s'\nwrote %zu rows x %zu cols to %s\n",
                pipeline.value().ToString().c_str(), table.rows(),
                table.cols(), options.out.c_str());
    return 0;
  }

  ModelKind model_kind = ModelKind::kLogisticRegression;
  if (options.model == "XGB") {
    model_kind = ModelKind::kXgboost;
  } else if (options.model == "MLP") {
    model_kind = ModelKind::kMlp;
  } else if (options.model != "LR") {
    std::fprintf(stderr, "error: unknown model '%s'\n",
                 options.model.c_str());
    return 2;
  }

  Rng rng(options.seed);
  TrainValidSplit split = SplitTrainValid(dataset.value(), 0.8, &rng);
  PipelineEvaluator evaluator(split.train, split.valid,
                              ModelConfig::Defaults(model_kind));
  if (options.train_fraction < 1.0) {
    evaluator.set_global_train_fraction(options.train_fraction);
  }
  if (options.fault_rate > 0.0 || options.slowdown_rate > 0.0) {
    FaultInjectorConfig injector;
    injector.fault_rate = options.fault_rate;
    injector.slowdown_rate = options.slowdown_rate;
    injector.slowdown_seconds = options.slowdown_seconds;
    injector.seed = options.seed ^ 0x5EEDFA17;
    evaluator.AttachFaultInjector(injector);
  }
  Budget budget = options.seconds > 0.0 ? Budget::Seconds(options.seconds)
                                        : Budget::Evaluations(options.budget);
  if (options.eval_deadline > 0.0) {
    budget = budget.WithEvalDeadline(options.eval_deadline);
  }
  SearchOptions search_options;
  search_options.budget = budget;
  search_options.seed = options.seed;
  search_options.fault_policy.max_retries = options.max_retries;
  search_options.num_threads = options.threads > 0 ? options.threads : 1;
  search_options.cache_bytes =
      static_cast<size_t>(options.cache_mb * 1024.0 * 1024.0);

  std::printf("dataset: %s (%zu rows x %zu cols, %d classes)\n",
              dataset.value().name.c_str(), dataset.value().num_rows(),
              dataset.value().num_cols(), dataset.value().num_classes);
  std::printf("model: %s | algorithm: %s%s | space: %s\n",
              options.model.c_str(), options.algorithm.c_str(),
              options.two_step ? " (Two-step)" : "", options.space.c_str());

  SearchResult result;
  if (options.space == "default") {
    if (options.two_step) {
      std::fprintf(stderr,
                   "error: --two-step requires --space low or high\n");
      return 2;
    }
    Result<std::unique_ptr<SearchAlgorithm>> algorithm =
        MakeSearchAlgorithm(options.algorithm);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   algorithm.status().ToString().c_str());
      return 2;
    }
    SearchSpace space = SearchSpace::Default(options.max_length);
    result = RunSearch(algorithm.value().get(), &evaluator, space,
                       search_options);
  } else {
    ParameterSpace parameters = options.space == "low"
                                    ? ParameterSpace::LowCardinality()
                                    : ParameterSpace::HighCardinality();
    if (options.space != "low" && options.space != "high") {
      std::fprintf(stderr, "error: unknown space '%s'\n",
                   options.space.c_str());
      return 2;
    }
    if (options.two_step) {
      TwoStepConfig config;
      config.algorithm = options.algorithm;
      config.max_pipeline_length = options.max_length;
      result = RunTwoStep(config, &evaluator, parameters, search_options);
    } else {
      result = RunOneStep(options.algorithm, &evaluator, parameters,
                          search_options, options.max_length);
    }
  }

  std::printf("\nno-FP baseline : %.4f\n", result.baseline_accuracy);
  std::printf("best accuracy  : %.4f (%+.2f%%)\n", result.best_accuracy,
              100.0 * (result.best_accuracy - result.baseline_accuracy));
  std::printf("best pipeline  : %s\n",
              result.best_pipeline.ToString().c_str());
  std::printf("evaluations    : %ld (cost %.1f) in %.2fs | pick %.2fs, "
              "prep %.2fs, train %.2fs\n",
              result.num_evaluations, result.evaluation_cost,
              result.elapsed_seconds, result.pick_seconds,
              result.prep_seconds, result.train_seconds);
  std::printf("failures       : %ld failed attempts, %ld retries, "
              "%ld quarantined, %ld quarantine hits\n",
              result.num_failures, result.num_retries,
              result.num_quarantined, result.num_quarantine_hits);
  if (search_options.num_threads > 1 || search_options.cache_bytes > 0) {
    std::printf("engine         : %d threads | result cache %ld/%ld hits | "
                "prefix cache %ld/%ld hits\n",
                result.num_threads, result.result_cache_hits,
                result.result_cache_hits + result.result_cache_misses,
                result.transform_cache_hits,
                result.transform_cache_hits + result.transform_cache_misses);
  }
  return 0;
}
