/// autofp_serve — score rows against an exported pipeline artifact.
///
/// The serving half of the artifact workflow (see DESIGN.md "Artifacts
/// and serving"): `autofp --export-artifact` writes the fitted pipeline
/// plus trained model to one file; this tool loads it into an immutable
/// Predictor and applies `transform -> predict` to rows, either in one
/// batch pass (`score`) or as a long-running request loop (`serve`).
///
/// Usage:
///   autofp_serve score --artifact FILE --in FILE.csv --out FILE.csv
///                [--threads N] [--batch N] [--has-header]
///   autofp_serve serve --artifact FILE [--threads N]
///
/// score: reads a numeric CSV and writes one prediction per input row.
/// Rows may carry the training label as a trailing extra column (it is
/// ignored), so `autofp --apply`-style dumps score directly. Malformed
/// rows (non-numeric cell, wrong column count) are skipped and counted —
/// a bad row never aborts the batch — and reported on stderr.
///
/// serve: reads newline-delimited requests from stdin, one CSV feature
/// row per line, and answers each on stdout with the predicted class id
/// (or `ERR <reason>` for a malformed line). SIGINT/SIGTERM drain
/// gracefully: the in-flight request finishes, the latency report is
/// printed, and the process exits 3 (mirroring the search CLI).
///
/// Exit codes: 0 ok; 1 runtime error (unreadable/corrupt artifact, I/O);
/// 2 usage error; 3 interrupted by signal; 4 every input row malformed.

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/predictor.h"

namespace {

using namespace autofp;

volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void HandleStopSignal(int) { g_stop_requested = 1; }

struct Options {
  std::string mode;  ///< "score" or "serve".
  std::string artifact;
  std::string in;
  std::string out;
  int threads = 1;
  size_t batch = 256;
  bool has_header = false;
};

void PrintUsage() {
  std::printf(
      "usage: autofp_serve score --artifact FILE --in FILE.csv --out "
      "FILE.csv\n"
      "                    [--threads N] [--batch N] [--has-header]\n"
      "       autofp_serve serve --artifact FILE [--threads N]\n"
      "  score: batch-score a CSV (one prediction per row; rows may carry\n"
      "         a trailing label column, which is ignored; malformed rows\n"
      "         are skipped and counted)\n"
      "  serve: answer newline-delimited CSV rows on stdin until EOF or\n"
      "         SIGINT/SIGTERM\n"
      "  --threads N    scoring threads (default 1)\n"
      "  --batch N      rows per scoring shard (default 256)\n"
      "  --has-header   skip the first line of --in\n"
      "exit codes: 0 ok | 1 error | 2 usage | 3 interrupted | 4 all rows "
      "malformed\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  if (argc < 2) return false;
  options->mode = argv[1];
  if (options->mode != "score" && options->mode != "serve") {
    std::fprintf(stderr, "error: unknown mode '%s'\n", options->mode.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--artifact") {
      const char* v = next("--artifact");
      if (v == nullptr) return false;
      options->artifact = v;
    } else if (arg == "--in") {
      const char* v = next("--in");
      if (v == nullptr) return false;
      options->in = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      options->out = v;
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr) return false;
      options->threads = std::atoi(v);
      if (options->threads < 1) {
        std::fprintf(stderr, "error: --threads must be >= 1\n");
        return false;
      }
    } else if (arg == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      long batch = std::atol(v);
      if (batch < 1) {
        std::fprintf(stderr, "error: --batch must be >= 1\n");
        return false;
      }
      options->batch = static_cast<size_t>(batch);
    } else if (arg == "--has-header") {
      options->has_header = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->artifact.empty()) {
    std::fprintf(stderr, "error: --artifact is required\n");
    return false;
  }
  if (options->mode == "score" &&
      (options->in.empty() || options->out.empty())) {
    std::fprintf(stderr, "error: score mode needs --in and --out\n");
    return false;
  }
  return true;
}

/// Parses one CSV line into doubles. Returns false (with a reason) on a
/// non-numeric cell; the caller decides what a bad row means.
bool ParseRow(const std::string& line, std::vector<double>* cells,
              std::string* reason) {
  cells->clear();
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    std::string cell = line.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    // Trim surrounding whitespace so "1.0, 2.0" parses.
    size_t first = cell.find_first_not_of(" \t\r");
    size_t last = cell.find_last_not_of(" \t\r");
    if (first == std::string::npos) {
      *reason = "empty cell";
      return false;
    }
    cell = cell.substr(first, last - first + 1);
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    if (end != cell.c_str() + cell.size() || errno == ERANGE) {
      *reason = "non-numeric cell '" + cell + "'";
      return false;
    }
    cells->push_back(value);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

/// Checks a parsed row against the artifact schema. Rows may carry one
/// trailing extra column (the training label) which is dropped.
bool CheckWidth(std::vector<double>* cells, uint64_t input_cols,
                std::string* reason) {
  if (cells->size() == input_cols + 1) cells->pop_back();
  if (cells->size() != input_cols) {
    *reason = "expected " + std::to_string(input_cols) + " columns, got " +
              std::to_string(cells->size());
    return false;
  }
  return true;
}

void PrintStats(const Predictor& predictor) {
  ServeStats stats = predictor.stats();
  std::fprintf(stderr,
               "latency: %ld batches, %ld rows, %.0f rows/s, "
               "p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
               stats.batches, stats.rows, stats.rows_per_second, stats.p50_ms,
               stats.p95_ms, stats.p99_ms);
}

int RunScore(const Options& options, const Predictor& predictor) {
  std::ifstream in(options.in);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", options.in.c_str());
    return 1;
  }
  const uint64_t input_cols = predictor.schema().input_cols;
  Matrix rows;
  long skipped = 0;
  long line_number = 0;
  std::string line;
  std::vector<double> cells;
  bool skip_header = options.has_header;
  while (std::getline(in, line)) {
    ++line_number;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string reason;
    if (!ParseRow(line, &cells, &reason) ||
        !CheckWidth(&cells, input_cols, &reason)) {
      std::fprintf(stderr, "warning: skipping line %ld: %s\n", line_number,
                   reason.c_str());
      ++skipped;
      continue;
    }
    Matrix row(1, input_cols);
    std::copy(cells.begin(), cells.end(), row.RowPtr(0));
    rows.AppendRows(std::move(row));
  }
  if (in.bad()) {
    std::fprintf(stderr, "error: I/O error reading %s\n", options.in.c_str());
    return 1;
  }
  if (rows.rows() == 0) {
    if (skipped > 0) {
      std::fprintf(stderr, "error: all %ld rows malformed\n", skipped);
      return 4;
    }
    std::fprintf(stderr, "warning: %s has no data rows\n", options.in.c_str());
  }

  Result<std::vector<int>> predictions =
      predictor.PredictSharded(rows, options.batch);
  if (!predictions.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 predictions.status().message().c_str());
    return 1;
  }
  std::ofstream out(options.out);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", options.out.c_str());
    return 1;
  }
  out << "prediction\n";
  for (int label : predictions.value()) out << label << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: I/O error writing %s\n", options.out.c_str());
    return 1;
  }
  std::fprintf(stderr, "scored %zu rows (%ld skipped) -> %s\n", rows.rows(),
               skipped, options.out.c_str());
  PrintStats(predictor);
  return 0;
}

int RunServe(const Predictor& predictor) {
  const uint64_t input_cols = predictor.schema().input_cols;
  std::fprintf(stderr,
               "serving artifact for dataset '%s' (%" PRIu64
               " feature columns, %d classes); one CSV row per line\n",
               predictor.schema().dataset_name.c_str(), input_cols,
               predictor.schema().num_classes);
  std::string line;
  std::vector<double> cells;
  long answered = 0;
  while (g_stop_requested == 0 && std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string reason;
    if (!ParseRow(line, &cells, &reason) ||
        !CheckWidth(&cells, input_cols, &reason)) {
      std::printf("ERR %s\n", reason.c_str());
      std::fflush(stdout);
      continue;
    }
    Matrix row(1, input_cols);
    std::copy(cells.begin(), cells.end(), row.RowPtr(0));
    Result<std::vector<int>> prediction = predictor.Predict(row);
    if (!prediction.ok()) {
      std::printf("ERR %s\n", prediction.status().message().c_str());
    } else {
      std::printf("%d\n", prediction.value()[0]);
    }
    std::fflush(stdout);
    ++answered;
  }
  // Graceful drain: the in-flight request above already finished; report
  // and exit with the interrupt code if a signal (not EOF) stopped us.
  std::fprintf(stderr, "served %ld requests\n", answered);
  PrintStats(predictor);
  return g_stop_requested != 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  Predictor::Options predictor_options;
  predictor_options.num_threads = options.threads;
  Predictor::LoadResult loaded =
      Predictor::Load(options.artifact, predictor_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: cannot load artifact %s: [%s] %s\n",
                 options.artifact.c_str(), ArtifactErrorName(loaded.error),
                 loaded.status.message().c_str());
    return 1;
  }
  const Predictor& predictor = *loaded.predictor;
  std::fprintf(stderr, "loaded artifact: pipeline [%s], model %s\n",
               predictor.spec().ToString().c_str(),
               ModelKindName(predictor.model_config().kind).c_str());

  return options.mode == "score" ? RunScore(options, predictor)
                                 : RunServe(predictor);
}
