/// autofp_serve — score rows against an exported pipeline artifact.
///
/// The serving half of the artifact workflow (see DESIGN.md "Artifacts
/// and serving" and "Network serving"): `autofp --export-artifact` writes
/// the fitted pipeline plus trained model to one file; this tool loads it
/// into an immutable Predictor and applies `transform -> predict` to
/// rows, as a batch pass (`score`), a stdin request loop (`serve`), or a
/// concurrent socket server (`listen`).
///
/// Usage:
///   autofp_serve score --artifact FILE --in FILE.csv --out FILE.csv
///                [--threads N] [--batch N] [--has-header]
///   autofp_serve serve --artifact FILE [--threads N] [--batch N]
///   autofp_serve listen --artifact FILE [--threads N] [--batch N]
///                [--host H] [--port P] [--max-batch-rows N]
///                [--max-delay-us N] [--max-queue-rows N] [--use-poll]
///
/// score: reads a numeric CSV and writes one prediction per input row.
/// Rows may carry the training label as a trailing extra column (it is
/// ignored), so `autofp --apply`-style dumps score directly. Malformed
/// rows (non-numeric cell, wrong column count) are skipped and counted —
/// a bad row never aborts the batch — and reported on stderr.
///
/// serve: reads newline-delimited requests from stdin, one CSV feature
/// row per line, and answers each on stdout with the predicted class id
/// (or `ERR [<code>] <reason>` from the serving error taxonomy for a
/// malformed line). SIGINT/SIGTERM drain gracefully: the in-flight
/// request finishes, the latency report is printed, and the process
/// exits 3 (mirroring the search CLI).
///
/// listen: binds a socket (port 0 picks an ephemeral port, announced as
/// "listening on HOST:PORT" on stderr) and serves the framed binary
/// protocol (serve/protocol.h) with micro-batching and a hot-swap
/// artifact registry: a SWAP frame — or SIGHUP — replaces the live
/// artifact atomically under traffic. SIGINT/SIGTERM drain and exit 3.
/// SIGUSR1 dumps one JSON line of server + latency + streaming counters
/// to stderr ("stats: {...}").
///
/// With --candidate PATH, listen also runs the streaming control loop
/// (see DESIGN.md "Streaming and drift"): every scored batch feeds a
/// drift monitor built from the artifact's reference stats plus a
/// reservoir sample of recent rows; a drifted window triggers a
/// budget-bounded background re-search whose winning pipeline is
/// exported to PATH and hot-swapped — the old artifact keeps serving on
/// any failure.
///
/// Exit codes: 0 ok; 1 runtime error (unreadable/corrupt artifact, I/O);
/// 2 usage error; 3 interrupted by signal; 4 every input row malformed.

#include <csignal>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "stream/controller.h"
#include "cli_flags.h"

namespace {

using namespace autofp;

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

extern "C" void HandleStopSignal(int) { g_stop_requested = 1; }
extern "C" void HandleReloadSignal(int) { g_reload_requested = 1; }
extern "C" void HandleDumpSignal(int) { g_dump_requested = 1; }

struct Options {
  std::string mode;  ///< "score", "serve" or "listen".
  std::string artifact;
  std::string in;
  std::string out;
  int threads = 1;
  size_t batch = 256;
  bool has_header = false;
  // listen mode.
  std::string host = "127.0.0.1";
  int port = 0;
  size_t max_batch_rows = 2048;
  long max_delay_us = 200;
  size_t max_queue_rows = 1u << 16;
  bool use_poll = false;
  // Streaming drift + background re-search (listen mode; enabled by
  // --candidate).
  std::string candidate;
  size_t drift_window = 512;
  double drift_threshold = 0.5;
  size_t drift_min_columns = 1;
  size_t reservoir_rows = 2048;
  long research_budget = 32;
  std::string research_algorithm = "RS";
  uint64_t research_seed = 1;
  size_t research_min_rows = 64;
  std::string research_journal;
};

void PrintUsage() {
  std::printf(
      "usage: autofp_serve score --artifact FILE --in FILE.csv --out "
      "FILE.csv\n"
      "                    [--threads N] [--batch N] [--has-header]\n"
      "       autofp_serve serve --artifact FILE [--threads N] [--batch N]\n"
      "       autofp_serve listen --artifact FILE [--threads N] [--batch N]\n"
      "                    [--host H] [--port P] [--max-batch-rows N]\n"
      "                    [--max-delay-us N] [--max-queue-rows N] "
      "[--use-poll]\n"
      "  score: batch-score a CSV (one prediction per row; rows may carry\n"
      "         a trailing label column, which is ignored; malformed rows\n"
      "         are skipped and counted)\n"
      "  serve: answer newline-delimited CSV rows on stdin until EOF or\n"
      "         SIGINT/SIGTERM\n"
      "  listen: serve the framed binary protocol on a socket with\n"
      "         micro-batching; SWAP frames or SIGHUP hot-swap the\n"
      "         artifact; port 0 picks an ephemeral port (announced as\n"
      "         'listening on HOST:PORT' on stderr)\n"
      "  --threads N        scoring threads (default 1)\n"
      "  --batch N          rows per scoring shard (default 256)\n"
      "  --has-header       skip the first line of --in\n"
      "  --host H           listen address (default 127.0.0.1)\n"
      "  --port P           listen port (default 0 = ephemeral)\n"
      "  --max-batch-rows N micro-batch row bound (default 2048)\n"
      "  --max-delay-us N   micro-batch straggler wait (default 200)\n"
      "  --max-queue-rows N admission bound before BUSY (default 65536)\n"
      "  --use-poll         use the portable poll(2) loop, not epoll\n"
      "  --candidate PATH   enable drift-triggered background re-search;\n"
      "                     candidate artifacts are exported to PATH and\n"
      "                     hot-swapped on success (listen mode only)\n"
      "  --drift-window N   rows per drift comparison window (default 512)\n"
      "  --drift-threshold F per-column trigger threshold in reference\n"
      "                     stddevs (default 0.5)\n"
      "  --drift-min-columns N columns over threshold to trigger (default 1)\n"
      "  --reservoir-rows N rows retained for the re-search snapshot\n"
      "                     (default 2048)\n"
      "  --research-budget N evaluation budget per background search\n"
      "                     (default 32)\n"
      "  --research-algorithm NAME Table 3 search algorithm (default RS)\n"
      "  --research-seed N  seed for the background search (default 1)\n"
      "  --research-min-rows N refuse snapshots smaller than this\n"
      "                     (default 64)\n"
      "  --research-journal PATH durable-run journal for background\n"
      "                     searches (default none)\n"
      "exit codes: 0 ok | 1 error | 2 usage | 3 interrupted | 4 all rows "
      "malformed\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  if (argc < 2) return false;
  options->mode = argv[1];
  if (options->mode != "score" && options->mode != "serve" &&
      options->mode != "listen") {
    std::fprintf(stderr, "error: unknown mode '%s'\n", options->mode.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--artifact") {
      if (!cli::ParseString(argc, argv, &i, "--artifact", &options->artifact))
        return false;
    } else if (arg == "--in") {
      if (!cli::ParseString(argc, argv, &i, "--in", &options->in))
        return false;
    } else if (arg == "--out") {
      if (!cli::ParseString(argc, argv, &i, "--out", &options->out))
        return false;
    } else if (arg == "--threads") {
      if (!cli::ParseInt(argc, argv, &i, "--threads", 1, &options->threads))
        return false;
    } else if (arg == "--batch") {
      if (!cli::ParseSize(argc, argv, &i, "--batch", 1, &options->batch))
        return false;
    } else if (arg == "--has-header") {
      options->has_header = true;
    } else if (arg == "--host") {
      if (!cli::ParseString(argc, argv, &i, "--host", &options->host))
        return false;
    } else if (arg == "--port") {
      if (!cli::ParseInt(argc, argv, &i, "--port", 0, &options->port))
        return false;
    } else if (arg == "--max-batch-rows") {
      if (!cli::ParseSize(argc, argv, &i, "--max-batch-rows", 1,
                          &options->max_batch_rows))
        return false;
    } else if (arg == "--max-delay-us") {
      if (!cli::ParseLong(argc, argv, &i, "--max-delay-us", 0,
                          &options->max_delay_us))
        return false;
    } else if (arg == "--max-queue-rows") {
      if (!cli::ParseSize(argc, argv, &i, "--max-queue-rows", 1,
                          &options->max_queue_rows))
        return false;
    } else if (arg == "--use-poll") {
      options->use_poll = true;
    } else if (arg == "--candidate") {
      if (!cli::ParseString(argc, argv, &i, "--candidate",
                            &options->candidate))
        return false;
    } else if (arg == "--drift-window") {
      if (!cli::ParseSize(argc, argv, &i, "--drift-window", 1,
                          &options->drift_window))
        return false;
    } else if (arg == "--drift-threshold") {
      if (!cli::ParseDouble(argc, argv, &i, "--drift-threshold",
                            &options->drift_threshold))
        return false;
    } else if (arg == "--drift-min-columns") {
      if (!cli::ParseSize(argc, argv, &i, "--drift-min-columns", 1,
                          &options->drift_min_columns))
        return false;
    } else if (arg == "--reservoir-rows") {
      if (!cli::ParseSize(argc, argv, &i, "--reservoir-rows", 1,
                          &options->reservoir_rows))
        return false;
    } else if (arg == "--research-budget") {
      if (!cli::ParseLong(argc, argv, &i, "--research-budget", 1,
                          &options->research_budget))
        return false;
    } else if (arg == "--research-algorithm") {
      if (!cli::ParseString(argc, argv, &i, "--research-algorithm",
                            &options->research_algorithm))
        return false;
    } else if (arg == "--research-seed") {
      if (!cli::ParseU64(argc, argv, &i, "--research-seed",
                         &options->research_seed))
        return false;
    } else if (arg == "--research-min-rows") {
      if (!cli::ParseSize(argc, argv, &i, "--research-min-rows", 1,
                          &options->research_min_rows))
        return false;
    } else if (arg == "--research-journal") {
      if (!cli::ParseString(argc, argv, &i, "--research-journal",
                            &options->research_journal))
        return false;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->artifact.empty()) {
    std::fprintf(stderr, "error: --artifact is required\n");
    return false;
  }
  if (options->mode == "score" &&
      (options->in.empty() || options->out.empty())) {
    std::fprintf(stderr, "error: score mode needs --in and --out\n");
    return false;
  }
  if (!options->candidate.empty() && options->mode != "listen") {
    std::fprintf(stderr, "error: --candidate needs listen mode\n");
    return false;
  }
  if (!(options->drift_threshold > 0.0)) {
    std::fprintf(stderr, "error: --drift-threshold must be > 0\n");
    return false;
  }
  return true;
}

void PrintStats(const Predictor& predictor) {
  ServeStats stats = predictor.stats();
  std::fprintf(stderr,
               "latency: %ld batches, %ld rows, %.0f rows/s, "
               "p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
               stats.batches, stats.rows, stats.rows_per_second, stats.p50_ms,
               stats.p95_ms, stats.p99_ms);
}

/// The SIGUSR1 dump: every counter the listen server has, as one JSON
/// line on stderr (greppable as "stats: {"). The stream fragment is
/// present only when the streaming control loop is wired in.
void DumpStatsJson(const ServeSocketServer& server,
                   const ArtifactRegistry& registry,
                   const StreamController* stream) {
  const ServerCounters counts = server.counters();
  const RegistryInfo info = registry.Info();
  std::string line = "stats: {";
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "\"generation\":%ld,\"connections_accepted\":%ld,"
      "\"frames_received\":%ld,\"predict_requests\":%ld,"
      "\"predict_rows\":%ld,\"micro_batches\":%ld,"
      "\"coalesced_requests\":%ld,\"busy_shed\":%ld,"
      "\"protocol_errors\":%ld,\"swaps\":%ld,\"peer_disconnects\":%ld",
      info.generation, counts.connections_accepted, counts.frames_received,
      counts.predict_requests, counts.predict_rows, counts.micro_batches,
      counts.coalesced_requests, counts.busy_shed, counts.protocol_errors,
      counts.swaps, counts.peer_disconnects);
  line += buffer;
  std::shared_ptr<const Predictor> live = registry.Acquire();
  if (live != nullptr) {
    const ServeStats stats = live->stats();
    std::snprintf(buffer, sizeof(buffer),
                  ",\"latency_batches\":%ld,\"latency_rows\":%ld,"
                  "\"rows_per_second\":%.1f,\"p50_ms\":%.3f,"
                  "\"p95_ms\":%.3f,\"p99_ms\":%.3f",
                  stats.batches, stats.rows, stats.rows_per_second,
                  stats.p50_ms, stats.p95_ms, stats.p99_ms);
    line += buffer;
  }
  if (stream != nullptr) {
    line += ",";
    line += stream->CountersJson();
  }
  line += "}";
  std::fprintf(stderr, "%s\n", line.c_str());
  std::fflush(stderr);
}

int RunScore(const Options& options, const Predictor& predictor) {
  std::ifstream in(options.in);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", options.in.c_str());
    return 1;
  }
  const uint64_t input_cols = predictor.schema().input_cols;
  Matrix rows;
  long skipped = 0;
  long line_number = 0;
  std::string line;
  std::vector<double> cells;
  bool skip_header = options.has_header;
  while (std::getline(in, line)) {
    ++line_number;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string reason;
    Matrix row;
    if (ParseCsvRow(line, &cells, &reason)) {
      row.Resize(1, cells.size());
      std::copy(cells.begin(), cells.end(), row.RowPtr(0));
    }
    if (reason.empty() && !FitRowsToSchema(&row, input_cols, &reason)) {
      // reason is set by FitRowsToSchema.
    }
    if (!reason.empty()) {
      std::fprintf(stderr, "warning: skipping line %ld: %s\n", line_number,
                   reason.c_str());
      ++skipped;
      continue;
    }
    rows.AppendRows(std::move(row));
  }
  if (in.bad()) {
    std::fprintf(stderr, "error: I/O error reading %s\n", options.in.c_str());
    return 1;
  }
  if (rows.rows() == 0) {
    if (skipped > 0) {
      std::fprintf(stderr, "error: all %ld rows malformed\n", skipped);
      return 4;
    }
    std::fprintf(stderr, "warning: %s has no data rows\n", options.in.c_str());
  }

  Result<std::vector<int>> predictions =
      predictor.PredictSharded(rows, options.batch);
  if (!predictions.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 predictions.status().message().c_str());
    return 1;
  }
  std::ofstream out(options.out);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", options.out.c_str());
    return 1;
  }
  out << "prediction\n";
  for (int label : predictions.value()) out << label << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: I/O error writing %s\n", options.out.c_str());
    return 1;
  }
  std::fprintf(stderr, "scored %zu rows (%ld skipped) -> %s\n", rows.rows(),
               skipped, options.out.c_str());
  PrintStats(predictor);
  return 0;
}

/// The stdin request loop, running each line through the same
/// ServeRequest/ServeResponse surface as the socket server.
int RunServe(const Options& options, const Predictor& predictor) {
  std::fprintf(stderr,
               "serving artifact for dataset '%s' (%" PRIu64
               " feature columns, %d classes); one CSV row per line\n",
               predictor.schema().dataset_name.c_str(),
               predictor.schema().input_cols,
               predictor.schema().num_classes);
  std::string line;
  std::vector<double> cells;
  long answered = 0;
  while (g_stop_requested == 0 && std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string reason;
    ServeResponse response;
    if (!ParseCsvRow(line, &cells, &reason)) {
      response = ServeResponse::Error(ServeError::kMalformedBody, reason);
    } else {
      ServeRequest request;
      request.type = FrameType::kPredictDense;
      request.rows.Resize(1, cells.size());
      std::copy(cells.begin(), cells.end(), request.rows.RowPtr(0));
      response = ExecuteRequest(&predictor, request, options.batch);
    }
    if (!response.ok()) {
      std::printf("ERR [%s] %s\n", ServeErrorName(response.error),
                  response.message.c_str());
    } else {
      std::printf("%d\n", response.predictions[0]);
    }
    std::fflush(stdout);
    if (std::ferror(stdout)) {
      // The consumer of our answers closed its end (EPIPE, surfaced as a
      // stream error because SIGPIPE is ignored): a connection close,
      // not a crash. Drain like EOF and report.
      std::fprintf(stderr, "stdout closed by peer; draining\n");
      break;
    }
    ++answered;
  }
  // Graceful drain: the in-flight request above already finished; report
  // and exit with the interrupt code if a signal (not EOF) stopped us.
  std::fprintf(stderr, "served %ld requests\n", answered);
  PrintStats(predictor);
  return g_stop_requested != 0 ? 3 : 0;
}

/// The socket front end: registry + concurrent server, running until a
/// stop signal drains it. SIGHUP queues an artifact reload.
int RunListen(const Options& options) {
  Predictor::Options predictor_options;
  predictor_options.num_threads = options.threads;
  ArtifactRegistry registry(predictor_options);
  Status swapped = registry.Swap(options.artifact);
  if (!swapped.ok()) {
    std::fprintf(stderr, "error: cannot load artifact %s: %s\n",
                 options.artifact.c_str(), swapped.message().c_str());
    return 1;
  }
  const RegistryInfo info = registry.Info();
  std::fprintf(stderr, "loaded artifact: pipeline [%s], model %s\n",
               info.pipeline.c_str(), info.model.c_str());

  // Streaming control loop: drift monitor + reservoir + background
  // re-search, tapped into the batch thread. Enabled by --candidate.
  std::unique_ptr<StreamController> stream;
  if (!options.candidate.empty()) {
    StreamConfig stream_config;
    stream_config.drift.window_rows = options.drift_window;
    stream_config.drift.threshold = options.drift_threshold;
    stream_config.drift.min_columns = options.drift_min_columns;
    stream_config.research.budget_evaluations = options.research_budget;
    stream_config.research.algorithm = options.research_algorithm;
    stream_config.research.seed = options.research_seed;
    stream_config.research.candidate_path = options.candidate;
    stream_config.research.journal_path = options.research_journal;
    stream_config.research.min_rows = options.research_min_rows;
    stream_config.reservoir_rows = options.reservoir_rows;
    stream_config.seed = options.research_seed;
    stream = std::make_unique<StreamController>(&registry, stream_config);
    std::fprintf(stderr,
                 "drift: window %zu rows, threshold %.3f, re-search "
                 "budget %ld (%s) -> %s\n",
                 options.drift_window, options.drift_threshold,
                 options.research_budget, options.research_algorithm.c_str(),
                 options.candidate.c_str());
  }

  ServerOptions server_options;
  server_options.host = options.host;
  server_options.port = options.port;
  server_options.max_batch_rows = options.max_batch_rows;
  server_options.max_delay_us = options.max_delay_us;
  server_options.max_queue_rows = options.max_queue_rows;
  server_options.shard_rows = options.batch;
  server_options.use_poll = options.use_poll;
  server_options.batch_observer = stream.get();
  ServeSocketServer server(&registry, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  std::signal(SIGHUP, HandleReloadSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::fprintf(stderr, "listening on %s:%d\n", options.host.c_str(),
               server.port());
  std::fflush(stderr);

  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      g_reload_requested = 0;
      server.RequestReload();
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      DumpStatsJson(server, registry, stream.get());
    }
    struct timespec nap = {0, 50 * 1000 * 1000};  // 50 ms
    ::nanosleep(&nap, nullptr);
  }
  server.Stop();
  // Let an in-flight background re-search finish (it may be about to
  // swap; shutting down under it would race the registry teardown).
  if (stream != nullptr) stream->WaitForResearch();

  const ServerCounters counts = server.counters();
  std::fprintf(stderr,
               "served %ld requests (%ld rows) over %ld connections: "
               "%ld micro-batches, %ld coalesced, %ld busy-shed, "
               "%ld protocol errors, %ld swaps, %ld peer disconnects\n",
               counts.predict_requests, counts.predict_rows,
               counts.connections_accepted, counts.micro_batches,
               counts.coalesced_requests, counts.busy_shed,
               counts.protocol_errors, counts.swaps,
               counts.peer_disconnects);
  std::shared_ptr<const Predictor> live = registry.Acquire();
  if (live != nullptr) PrintStats(*live);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  // A peer (socket client, stdout consumer) closing mid-write must be a
  // typed EPIPE we can report and survive, never a silent SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  if (options.mode == "listen") return RunListen(options);

  Predictor::Options predictor_options;
  predictor_options.num_threads = options.threads;
  Predictor::LoadResult loaded =
      Predictor::Load(options.artifact, predictor_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: cannot load artifact %s: %s\n",
                 options.artifact.c_str(), loaded.status().message().c_str());
    return 1;
  }
  const Predictor& predictor = loaded.predictor();
  std::fprintf(stderr, "loaded artifact: pipeline [%s], model %s\n",
               predictor.spec().ToString().c_str(),
               ModelKindName(predictor.model_config().kind).c_str());

  return options.mode == "score" ? RunScore(options, predictor)
                                 : RunServe(options, predictor);
}
