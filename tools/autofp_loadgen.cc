/// autofp_loadgen — closed-loop load generator for `autofp_serve listen`.
///
/// Drives N concurrent connections against the socket front end (see
/// DESIGN.md "Network serving"), each thread sending one predict request
/// at a time (dense or CSV framing) built from a window of input rows,
/// and reports rows/sec plus p50/p95/p99 round-trip latency.
///
/// Correctness checking: `--expect FILE` gives the predictions the input
/// rows must score to (the `prediction` column a `autofp_serve score` run
/// wrote). With `--expect-alt FILE` — the hot-swap harness — every
/// response must wholly match the first file or wholly match the second:
/// a response mixing the two artifacts' answers is a torn swap and fails
/// the run. `--swap PATH --swap-after S` issues the SWAP admin frame
/// from inside the run so the swap lands under full load.
///
/// `--probe-malformed` instead checks the error taxonomy: send garbage
/// bytes, expect a typed error response followed by the server closing
/// the connection (and a healthy server afterwards).
///
/// Exit codes: 0 ok; 1 runtime/transport error; 2 usage error;
/// 5 response mismatch (wrong or torn predictions).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "cli_flags.h"
#include "util/matrix.h"
#include "util/timer.h"

namespace {

using namespace autofp;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 1;
  double duration = 5.0;
  size_t rows_per_request = 16;
  std::string format = "dense";  ///< "dense" or "csv".
  std::string in;                ///< CSV of feature rows to send.
  std::string expect;            ///< predictions file (old artifact).
  std::string expect_alt;        ///< predictions file (new artifact).
  std::string swap;              ///< artifact to SWAP in mid-run.
  double swap_after = 1.0;
  std::string json;              ///< write the report as JSON here.
  bool probe_malformed = false;
};

void PrintUsage() {
  std::printf(
      "usage: autofp_loadgen --port P [--host H] [--connections N]\n"
      "                      [--duration S] [--rows-per-request N]\n"
      "                      [--format dense|csv] --in FILE.csv\n"
      "                      [--expect FILE] [--expect-alt FILE]\n"
      "                      [--swap ARTIFACT --swap-after S]\n"
      "                      [--json FILE] [--probe-malformed]\n"
      "  closed-loop client for 'autofp_serve listen'; reports rows/sec\n"
      "  and p50/p95/p99 round-trip latency\n"
      "exit codes: 0 ok | 1 error | 2 usage | 5 mismatched/torn response\n");
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host") {
      if (!cli::ParseString(argc, argv, &i, "--host", &options->host))
        return false;
    } else if (arg == "--port") {
      if (!cli::ParseInt(argc, argv, &i, "--port", 1, &options->port))
        return false;
    } else if (arg == "--connections") {
      if (!cli::ParseInt(argc, argv, &i, "--connections", 1,
                         &options->connections))
        return false;
    } else if (arg == "--duration") {
      if (!cli::ParseDouble(argc, argv, &i, "--duration",
                            &options->duration))
        return false;
    } else if (arg == "--rows-per-request") {
      if (!cli::ParseSize(argc, argv, &i, "--rows-per-request", 1,
                          &options->rows_per_request))
        return false;
    } else if (arg == "--format") {
      if (!cli::ParseString(argc, argv, &i, "--format", &options->format))
        return false;
    } else if (arg == "--in") {
      if (!cli::ParseString(argc, argv, &i, "--in", &options->in))
        return false;
    } else if (arg == "--expect") {
      if (!cli::ParseString(argc, argv, &i, "--expect", &options->expect))
        return false;
    } else if (arg == "--expect-alt") {
      if (!cli::ParseString(argc, argv, &i, "--expect-alt",
                            &options->expect_alt))
        return false;
    } else if (arg == "--swap") {
      if (!cli::ParseString(argc, argv, &i, "--swap", &options->swap))
        return false;
    } else if (arg == "--swap-after") {
      if (!cli::ParseDouble(argc, argv, &i, "--swap-after",
                            &options->swap_after))
        return false;
    } else if (arg == "--json") {
      if (!cli::ParseString(argc, argv, &i, "--json", &options->json))
        return false;
    } else if (arg == "--probe-malformed") {
      options->probe_malformed = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  if (options->port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return false;
  }
  if (!options->probe_malformed && options->in.empty()) {
    std::fprintf(stderr, "error: --in is required\n");
    return false;
  }
  if (options->format != "dense" && options->format != "csv") {
    std::fprintf(stderr, "error: --format must be dense or csv\n");
    return false;
  }
  return true;
}

/// Loads a feature CSV ("f0,f1,...,label" header optional) into a matrix.
bool LoadRows(const std::string& path, Matrix* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      // Skip a non-numeric header line.
      std::vector<double> cells;
      std::string reason;
      if (!ParseCsvRow(line, &cells, &reason)) continue;
    }
    text += line;
    text += '\n';
  }
  std::string reason;
  if (!ParseCsvRows(text, rows, &reason)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), reason.c_str());
    return false;
  }
  return true;
}

/// Loads a predictions file: the `prediction`-headed single-column CSV
/// that `autofp_serve score` writes.
bool LoadExpected(const std::string& path, std::vector<int32_t>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "prediction") continue;
    out->push_back(static_cast<int32_t>(std::strtol(line.c_str(), nullptr, 10)));
  }
  if (out->empty()) {
    std::fprintf(stderr, "error: %s has no predictions\n", path.c_str());
    return false;
  }
  return true;
}

struct WorkerReport {
  long requests = 0;
  long rows = 0;
  long errors = 0;      ///< transport failures + non-ok, non-BUSY responses.
  long busy = 0;        ///< BUSY sheds (expected under overload).
  long mismatches = 0;  ///< wrong or torn predictions.
  std::vector<double> latencies_ms;
  std::string first_error;
};

/// True when the response predictions equal `expected` over the window
/// [start, start+count) (mod expected.size()).
bool MatchesWindow(const std::vector<int32_t>& got,
                   const std::vector<int32_t>& expected, size_t start,
                   size_t count) {
  if (got.size() != count) return false;
  for (size_t j = 0; j < count; ++j) {
    if (got[j] != expected[(start + j) % expected.size()]) return false;
  }
  return true;
}

void RunWorker(const Options& options, const Matrix& rows,
               const std::vector<int32_t>& expect,
               const std::vector<int32_t>& expect_alt, int worker_index,
               WorkerReport* report) {
  BlockingFrameClient client;
  Status connected = client.Connect(options.host, options.port);
  if (!connected.ok()) {
    ++report->errors;
    report->first_error = connected.ToString();
    return;
  }
  // Stagger start offsets so connections don't all score the same window.
  size_t at = (static_cast<size_t>(worker_index) * 37) % rows.rows();
  Matrix window;
  std::string request_bytes;
  Stopwatch wall;
  while (wall.ElapsedSeconds() < options.duration) {
    const size_t count = options.rows_per_request;
    window.Resize(count, rows.cols());
    for (size_t j = 0; j < count; ++j) {
      const double* src = rows.RowPtr((at + j) % rows.rows());
      std::copy(src, src + rows.cols(), window.RowPtr(j));
    }
    request_bytes.clear();
    if (options.format == "dense") {
      EncodePredictDense(window, &request_bytes);
    } else {
      std::string csv;
      char cell[64];
      for (size_t r = 0; r < count; ++r) {
        for (size_t c = 0; c < window.cols(); ++c) {
          std::snprintf(cell, sizeof(cell), "%.17g", window(r, c));
          if (c > 0) csv += ',';
          csv += cell;
        }
        csv += '\n';
      }
      EncodePredictCsv(csv, &request_bytes);
    }
    ServeResponse response;
    Stopwatch trip;
    Status status = client.RoundTrip(request_bytes, &response);
    const double latency_ms = trip.ElapsedSeconds() * 1e3;
    if (!status.ok()) {
      ++report->errors;
      if (report->first_error.empty()) report->first_error = status.ToString();
      return;  // the stream may be desynced; stop this connection.
    }
    ++report->requests;
    report->latencies_ms.push_back(latency_ms);
    if (!response.ok()) {
      if (response.error == ServeError::kBusy) {
        ++report->busy;
      } else {
        ++report->errors;
        if (report->first_error.empty()) {
          report->first_error = std::string(ServeErrorName(response.error)) +
                                ": " + response.message;
        }
      }
      continue;
    }
    report->rows += static_cast<long>(count);
    if (!expect.empty()) {
      // Old-or-new, never torn: the whole response must match one
      // expectation set.
      const bool old_ok = MatchesWindow(response.predictions, expect, at, count);
      const bool alt_ok =
          !expect_alt.empty() &&
          MatchesWindow(response.predictions, expect_alt, at, count);
      if (!old_ok && !alt_ok) {
        ++report->mismatches;
        if (report->first_error.empty()) {
          report->first_error =
              "prediction mismatch at row offset " + std::to_string(at);
        }
      }
    }
    at = (at + count) % rows.rows();
  }
}

/// Sends garbage bytes; a correct server answers one typed error frame
/// and closes. Returns 0/1.
int RunMalformedProbe(const Options& options) {
  BlockingFrameClient client;
  Status connected = client.Connect(options.host, options.port);
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  Status sent = client.SendBytes("this is not a frame at all............");
  if (!sent.ok()) {
    std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
    return 1;
  }
  Frame frame;
  Status received = client.RecvFrame(&frame);
  if (!received.ok()) {
    std::fprintf(stderr, "error: no error response to garbage: %s\n",
                 received.ToString().c_str());
    return 1;
  }
  ServeResponse response;
  if (!DecodeResponseFrame(frame, &response) || response.ok() ||
      !IsConnectionFatal(response.error)) {
    std::fprintf(stderr,
                 "error: expected a connection-fatal typed error frame\n");
    return 1;
  }
  // The server must now close; the next read sees EOF (an IoError here).
  Status after = client.RecvFrame(&frame);
  if (after.ok()) {
    std::fprintf(stderr, "error: server kept a desynced connection open\n");
    return 1;
  }
  std::printf("malformed probe ok: %s, then close\n",
              ServeErrorName(response.error));
  return 0;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(index, sorted->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  // A server that dies mid-run must surface as a typed send/recv error on
  // the affected connection, not a SIGPIPE kill of the whole load run.
  std::signal(SIGPIPE, SIG_IGN);
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.probe_malformed) return RunMalformedProbe(options);

  Matrix rows;
  if (!LoadRows(options.in, &rows)) return 1;
  std::vector<int32_t> expect;
  std::vector<int32_t> expect_alt;
  if (!options.expect.empty() && !LoadExpected(options.expect, &expect)) {
    return 1;
  }
  if (!options.expect_alt.empty() &&
      !LoadExpected(options.expect_alt, &expect_alt)) {
    return 1;
  }

  std::vector<WorkerReport> reports(options.connections);
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (int w = 0; w < options.connections; ++w) {
    workers.emplace_back([&, w] {
      RunWorker(options, rows, expect, expect_alt, w, &reports[w]);
    });
  }
  int swap_failed = 0;
  if (!options.swap.empty()) {
    // The swap lands from its own connection while the workers hammer
    // the server.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(options.swap_after, options.duration)));
    BlockingFrameClient admin;
    Status connected = admin.Connect(options.host, options.port);
    ServeResponse response;
    std::string swap_bytes;
    EncodeSwap(options.swap, &swap_bytes);
    Status swapped = connected.ok() ? admin.RoundTrip(swap_bytes, &response)
                                    : connected;
    if (!swapped.ok() || !response.ok()) {
      std::fprintf(stderr, "error: swap failed: %s\n",
                   swapped.ok() ? response.message.c_str()
                                : swapped.ToString().c_str());
      swap_failed = 1;
    } else {
      std::fprintf(stderr, "swap acknowledged: %s\n",
                   response.message.c_str());
    }
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  WorkerReport total;
  std::vector<double> latencies;
  for (const WorkerReport& report : reports) {
    total.requests += report.requests;
    total.rows += report.rows;
    total.errors += report.errors;
    total.busy += report.busy;
    total.mismatches += report.mismatches;
    latencies.insert(latencies.end(), report.latencies_ms.begin(),
                     report.latencies_ms.end());
    if (total.first_error.empty() && !report.first_error.empty()) {
      total.first_error = report.first_error;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double rows_per_sec =
      elapsed > 0.0 ? static_cast<double>(total.rows) / elapsed : 0.0;
  const double p50 = Percentile(&latencies, 0.50);
  const double p95 = Percentile(&latencies, 0.95);
  const double p99 = Percentile(&latencies, 0.99);
  std::printf(
      "connections=%d requests=%ld rows=%ld rows_per_sec=%.0f "
      "p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f busy=%ld errors=%ld "
      "mismatches=%ld\n",
      options.connections, total.requests, total.rows, rows_per_sec, p50,
      p95, p99, total.busy, total.errors, total.mismatches);
  if (!total.first_error.empty()) {
    std::fprintf(stderr, "first error: %s\n", total.first_error.c_str());
  }
  if (!options.json.empty()) {
    std::ofstream out(options.json);
    out << "{\n"
        << "  \"connections\": " << options.connections << ",\n"
        << "  \"requests\": " << total.requests << ",\n"
        << "  \"rows\": " << total.rows << ",\n"
        << "  \"rows_per_sec\": " << rows_per_sec << ",\n"
        << "  \"p50_ms\": " << p50 << ",\n"
        << "  \"p95_ms\": " << p95 << ",\n"
        << "  \"p99_ms\": " << p99 << ",\n"
        << "  \"busy\": " << total.busy << ",\n"
        << "  \"errors\": " << total.errors << ",\n"
        << "  \"mismatches\": " << total.mismatches << "\n"
        << "}\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", options.json.c_str());
      return 1;
    }
  }
  if (total.mismatches > 0) return 5;
  if (total.errors > 0 || swap_failed != 0 || total.requests == 0) return 1;
  return 0;
}
