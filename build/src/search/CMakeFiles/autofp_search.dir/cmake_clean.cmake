file(REMOVE_RECURSE
  "CMakeFiles/autofp_search.dir/anneal.cc.o"
  "CMakeFiles/autofp_search.dir/anneal.cc.o.d"
  "CMakeFiles/autofp_search.dir/bohb.cc.o"
  "CMakeFiles/autofp_search.dir/bohb.cc.o.d"
  "CMakeFiles/autofp_search.dir/enas.cc.o"
  "CMakeFiles/autofp_search.dir/enas.cc.o.d"
  "CMakeFiles/autofp_search.dir/evolution.cc.o"
  "CMakeFiles/autofp_search.dir/evolution.cc.o.d"
  "CMakeFiles/autofp_search.dir/hyperband.cc.o"
  "CMakeFiles/autofp_search.dir/hyperband.cc.o.d"
  "CMakeFiles/autofp_search.dir/pbt.cc.o"
  "CMakeFiles/autofp_search.dir/pbt.cc.o.d"
  "CMakeFiles/autofp_search.dir/progressive_nas.cc.o"
  "CMakeFiles/autofp_search.dir/progressive_nas.cc.o.d"
  "CMakeFiles/autofp_search.dir/registry.cc.o"
  "CMakeFiles/autofp_search.dir/registry.cc.o.d"
  "CMakeFiles/autofp_search.dir/reinforce.cc.o"
  "CMakeFiles/autofp_search.dir/reinforce.cc.o.d"
  "CMakeFiles/autofp_search.dir/smac.cc.o"
  "CMakeFiles/autofp_search.dir/smac.cc.o.d"
  "CMakeFiles/autofp_search.dir/tpe.cc.o"
  "CMakeFiles/autofp_search.dir/tpe.cc.o.d"
  "CMakeFiles/autofp_search.dir/two_step.cc.o"
  "CMakeFiles/autofp_search.dir/two_step.cc.o.d"
  "libautofp_search.a"
  "libautofp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
