file(REMOVE_RECURSE
  "libautofp_search.a"
)
