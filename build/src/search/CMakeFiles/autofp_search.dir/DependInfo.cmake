
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/anneal.cc" "src/search/CMakeFiles/autofp_search.dir/anneal.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/anneal.cc.o.d"
  "/root/repo/src/search/bohb.cc" "src/search/CMakeFiles/autofp_search.dir/bohb.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/bohb.cc.o.d"
  "/root/repo/src/search/enas.cc" "src/search/CMakeFiles/autofp_search.dir/enas.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/enas.cc.o.d"
  "/root/repo/src/search/evolution.cc" "src/search/CMakeFiles/autofp_search.dir/evolution.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/evolution.cc.o.d"
  "/root/repo/src/search/hyperband.cc" "src/search/CMakeFiles/autofp_search.dir/hyperband.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/hyperband.cc.o.d"
  "/root/repo/src/search/pbt.cc" "src/search/CMakeFiles/autofp_search.dir/pbt.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/pbt.cc.o.d"
  "/root/repo/src/search/progressive_nas.cc" "src/search/CMakeFiles/autofp_search.dir/progressive_nas.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/progressive_nas.cc.o.d"
  "/root/repo/src/search/registry.cc" "src/search/CMakeFiles/autofp_search.dir/registry.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/registry.cc.o.d"
  "/root/repo/src/search/reinforce.cc" "src/search/CMakeFiles/autofp_search.dir/reinforce.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/reinforce.cc.o.d"
  "/root/repo/src/search/smac.cc" "src/search/CMakeFiles/autofp_search.dir/smac.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/smac.cc.o.d"
  "/root/repo/src/search/tpe.cc" "src/search/CMakeFiles/autofp_search.dir/tpe.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/tpe.cc.o.d"
  "/root/repo/src/search/two_step.cc" "src/search/CMakeFiles/autofp_search.dir/two_step.cc.o" "gcc" "src/search/CMakeFiles/autofp_search.dir/two_step.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autofp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autofp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autofp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/autofp_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autofp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
