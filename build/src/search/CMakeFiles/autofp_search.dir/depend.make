# Empty dependencies file for autofp_search.
# This may be replaced when dependencies are built.
