# Empty compiler generated dependencies file for autofp_util.
# This may be replaced when dependencies are built.
