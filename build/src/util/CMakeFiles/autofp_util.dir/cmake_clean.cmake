file(REMOVE_RECURSE
  "CMakeFiles/autofp_util.dir/csv.cc.o"
  "CMakeFiles/autofp_util.dir/csv.cc.o.d"
  "CMakeFiles/autofp_util.dir/matrix.cc.o"
  "CMakeFiles/autofp_util.dir/matrix.cc.o.d"
  "CMakeFiles/autofp_util.dir/random.cc.o"
  "CMakeFiles/autofp_util.dir/random.cc.o.d"
  "CMakeFiles/autofp_util.dir/stats.cc.o"
  "CMakeFiles/autofp_util.dir/stats.cc.o.d"
  "libautofp_util.a"
  "libautofp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
