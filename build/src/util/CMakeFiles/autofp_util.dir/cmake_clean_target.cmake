file(REMOVE_RECURSE
  "libautofp_util.a"
)
