file(REMOVE_RECURSE
  "CMakeFiles/autofp_metafeatures.dir/metafeatures.cc.o"
  "CMakeFiles/autofp_metafeatures.dir/metafeatures.cc.o.d"
  "libautofp_metafeatures.a"
  "libautofp_metafeatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_metafeatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
