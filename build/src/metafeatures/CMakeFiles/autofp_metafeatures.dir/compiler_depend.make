# Empty compiler generated dependencies file for autofp_metafeatures.
# This may be replaced when dependencies are built.
