file(REMOVE_RECURSE
  "libautofp_metafeatures.a"
)
