# Empty dependencies file for autofp_ml.
# This may be replaced when dependencies are built.
