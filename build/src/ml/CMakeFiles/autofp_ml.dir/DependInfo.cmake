
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/autofp_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/autofp_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/autofp_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/autofp_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/lda.cc" "src/ml/CMakeFiles/autofp_ml.dir/lda.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/lda.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/autofp_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/autofp_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp_classifier.cc" "src/ml/CMakeFiles/autofp_ml.dir/mlp_classifier.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/mlp_classifier.cc.o.d"
  "/root/repo/src/ml/model.cc" "src/ml/CMakeFiles/autofp_ml.dir/model.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/model.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/autofp_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/autofp_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/autofp_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autofp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autofp_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
