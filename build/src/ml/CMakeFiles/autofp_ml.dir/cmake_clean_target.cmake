file(REMOVE_RECURSE
  "libautofp_ml.a"
)
