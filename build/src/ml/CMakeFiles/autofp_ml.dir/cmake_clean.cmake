file(REMOVE_RECURSE
  "CMakeFiles/autofp_ml.dir/cross_validation.cc.o"
  "CMakeFiles/autofp_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/autofp_ml.dir/decision_tree.cc.o"
  "CMakeFiles/autofp_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/autofp_ml.dir/gbdt.cc.o"
  "CMakeFiles/autofp_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/autofp_ml.dir/knn.cc.o"
  "CMakeFiles/autofp_ml.dir/knn.cc.o.d"
  "CMakeFiles/autofp_ml.dir/lda.cc.o"
  "CMakeFiles/autofp_ml.dir/lda.cc.o.d"
  "CMakeFiles/autofp_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/autofp_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/autofp_ml.dir/metrics.cc.o"
  "CMakeFiles/autofp_ml.dir/metrics.cc.o.d"
  "CMakeFiles/autofp_ml.dir/mlp_classifier.cc.o"
  "CMakeFiles/autofp_ml.dir/mlp_classifier.cc.o.d"
  "CMakeFiles/autofp_ml.dir/model.cc.o"
  "CMakeFiles/autofp_ml.dir/model.cc.o.d"
  "CMakeFiles/autofp_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/autofp_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/autofp_ml.dir/random_forest.cc.o"
  "CMakeFiles/autofp_ml.dir/random_forest.cc.o.d"
  "libautofp_ml.a"
  "libautofp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
