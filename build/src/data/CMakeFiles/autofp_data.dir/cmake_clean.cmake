file(REMOVE_RECURSE
  "CMakeFiles/autofp_data.dir/benchmark_suite.cc.o"
  "CMakeFiles/autofp_data.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/autofp_data.dir/dataset.cc.o"
  "CMakeFiles/autofp_data.dir/dataset.cc.o.d"
  "CMakeFiles/autofp_data.dir/splits.cc.o"
  "CMakeFiles/autofp_data.dir/splits.cc.o.d"
  "CMakeFiles/autofp_data.dir/synthetic.cc.o"
  "CMakeFiles/autofp_data.dir/synthetic.cc.o.d"
  "libautofp_data.a"
  "libautofp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
