# Empty dependencies file for autofp_data.
# This may be replaced when dependencies are built.
