file(REMOVE_RECURSE
  "libautofp_data.a"
)
