
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/autofp_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/autofp_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/mlp_net.cc" "src/nn/CMakeFiles/autofp_nn.dir/mlp_net.cc.o" "gcc" "src/nn/CMakeFiles/autofp_nn.dir/mlp_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
