file(REMOVE_RECURSE
  "libautofp_nn.a"
)
