file(REMOVE_RECURSE
  "CMakeFiles/autofp_nn.dir/lstm.cc.o"
  "CMakeFiles/autofp_nn.dir/lstm.cc.o.d"
  "CMakeFiles/autofp_nn.dir/mlp_net.cc.o"
  "CMakeFiles/autofp_nn.dir/mlp_net.cc.o.d"
  "libautofp_nn.a"
  "libautofp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
