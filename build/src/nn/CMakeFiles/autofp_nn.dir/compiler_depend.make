# Empty compiler generated dependencies file for autofp_nn.
# This may be replaced when dependencies are built.
