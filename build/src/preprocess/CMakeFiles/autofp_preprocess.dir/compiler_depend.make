# Empty compiler generated dependencies file for autofp_preprocess.
# This may be replaced when dependencies are built.
