
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preprocess/binarizer.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/binarizer.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/binarizer.cc.o.d"
  "/root/repo/src/preprocess/maxabs_scaler.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/maxabs_scaler.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/maxabs_scaler.cc.o.d"
  "/root/repo/src/preprocess/minmax_scaler.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/minmax_scaler.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/minmax_scaler.cc.o.d"
  "/root/repo/src/preprocess/normalizer.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/normalizer.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/normalizer.cc.o.d"
  "/root/repo/src/preprocess/pipeline.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/pipeline.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/pipeline.cc.o.d"
  "/root/repo/src/preprocess/pipeline_parse.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/pipeline_parse.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/pipeline_parse.cc.o.d"
  "/root/repo/src/preprocess/power_transformer.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/power_transformer.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/power_transformer.cc.o.d"
  "/root/repo/src/preprocess/preprocessor.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/preprocessor.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/preprocessor.cc.o.d"
  "/root/repo/src/preprocess/quantile_transformer.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/quantile_transformer.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/quantile_transformer.cc.o.d"
  "/root/repo/src/preprocess/standard_scaler.cc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/standard_scaler.cc.o" "gcc" "src/preprocess/CMakeFiles/autofp_preprocess.dir/standard_scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
