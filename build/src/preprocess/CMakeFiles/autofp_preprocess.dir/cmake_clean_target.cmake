file(REMOVE_RECURSE
  "libautofp_preprocess.a"
)
