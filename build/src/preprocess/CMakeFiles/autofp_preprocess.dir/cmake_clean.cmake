file(REMOVE_RECURSE
  "CMakeFiles/autofp_preprocess.dir/binarizer.cc.o"
  "CMakeFiles/autofp_preprocess.dir/binarizer.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/maxabs_scaler.cc.o"
  "CMakeFiles/autofp_preprocess.dir/maxabs_scaler.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/minmax_scaler.cc.o"
  "CMakeFiles/autofp_preprocess.dir/minmax_scaler.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/normalizer.cc.o"
  "CMakeFiles/autofp_preprocess.dir/normalizer.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/pipeline.cc.o"
  "CMakeFiles/autofp_preprocess.dir/pipeline.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/pipeline_parse.cc.o"
  "CMakeFiles/autofp_preprocess.dir/pipeline_parse.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/power_transformer.cc.o"
  "CMakeFiles/autofp_preprocess.dir/power_transformer.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/preprocessor.cc.o"
  "CMakeFiles/autofp_preprocess.dir/preprocessor.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/quantile_transformer.cc.o"
  "CMakeFiles/autofp_preprocess.dir/quantile_transformer.cc.o.d"
  "CMakeFiles/autofp_preprocess.dir/standard_scaler.cc.o"
  "CMakeFiles/autofp_preprocess.dir/standard_scaler.cc.o.d"
  "libautofp_preprocess.a"
  "libautofp_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
