file(REMOVE_RECURSE
  "libautofp_automl.a"
)
