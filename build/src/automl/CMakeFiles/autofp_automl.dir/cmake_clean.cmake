file(REMOVE_RECURSE
  "CMakeFiles/autofp_automl.dir/hpo.cc.o"
  "CMakeFiles/autofp_automl.dir/hpo.cc.o.d"
  "CMakeFiles/autofp_automl.dir/tpot_fp.cc.o"
  "CMakeFiles/autofp_automl.dir/tpot_fp.cc.o.d"
  "libautofp_automl.a"
  "libautofp_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
