# Empty compiler generated dependencies file for autofp_automl.
# This may be replaced when dependencies are built.
