# Empty compiler generated dependencies file for autofp_core.
# This may be replaced when dependencies are built.
