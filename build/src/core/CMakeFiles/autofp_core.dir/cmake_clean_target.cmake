file(REMOVE_RECURSE
  "libautofp_core.a"
)
