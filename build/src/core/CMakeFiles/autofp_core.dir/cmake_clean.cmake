file(REMOVE_RECURSE
  "CMakeFiles/autofp_core.dir/evaluator.cc.o"
  "CMakeFiles/autofp_core.dir/evaluator.cc.o.d"
  "CMakeFiles/autofp_core.dir/fp_growth.cc.o"
  "CMakeFiles/autofp_core.dir/fp_growth.cc.o.d"
  "CMakeFiles/autofp_core.dir/ranking.cc.o"
  "CMakeFiles/autofp_core.dir/ranking.cc.o.d"
  "CMakeFiles/autofp_core.dir/search_framework.cc.o"
  "CMakeFiles/autofp_core.dir/search_framework.cc.o.d"
  "CMakeFiles/autofp_core.dir/search_space.cc.o"
  "CMakeFiles/autofp_core.dir/search_space.cc.o.d"
  "libautofp_core.a"
  "libautofp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
