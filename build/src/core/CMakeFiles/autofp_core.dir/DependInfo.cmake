
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/autofp_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/autofp_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/fp_growth.cc" "src/core/CMakeFiles/autofp_core.dir/fp_growth.cc.o" "gcc" "src/core/CMakeFiles/autofp_core.dir/fp_growth.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/autofp_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/autofp_core.dir/ranking.cc.o.d"
  "/root/repo/src/core/search_framework.cc" "src/core/CMakeFiles/autofp_core.dir/search_framework.cc.o" "gcc" "src/core/CMakeFiles/autofp_core.dir/search_framework.cc.o.d"
  "/root/repo/src/core/search_space.cc" "src/core/CMakeFiles/autofp_core.dir/search_space.cc.o" "gcc" "src/core/CMakeFiles/autofp_core.dir/search_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/autofp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/autofp_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autofp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autofp_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
