file(REMOVE_RECURSE
  "CMakeFiles/automl_context.dir/automl_context.cpp.o"
  "CMakeFiles/automl_context.dir/automl_context.cpp.o.d"
  "automl_context"
  "automl_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automl_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
