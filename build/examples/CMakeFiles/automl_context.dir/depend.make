# Empty dependencies file for automl_context.
# This may be replaced when dependencies are built.
