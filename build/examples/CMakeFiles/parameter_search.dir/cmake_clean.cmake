file(REMOVE_RECURSE
  "CMakeFiles/parameter_search.dir/parameter_search.cpp.o"
  "CMakeFiles/parameter_search.dir/parameter_search.cpp.o.d"
  "parameter_search"
  "parameter_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
