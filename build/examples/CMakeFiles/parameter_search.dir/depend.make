# Empty dependencies file for parameter_search.
# This may be replaced when dependencies are built.
