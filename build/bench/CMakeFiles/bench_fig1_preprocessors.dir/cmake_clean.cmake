file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_preprocessors.dir/bench_fig1_preprocessors.cc.o"
  "CMakeFiles/bench_fig1_preprocessors.dir/bench_fig1_preprocessors.cc.o.d"
  "bench_fig1_preprocessors"
  "bench_fig1_preprocessors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_preprocessors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
