# Empty compiler generated dependencies file for bench_fig1_preprocessors.
# This may be replaced when dependencies are built.
