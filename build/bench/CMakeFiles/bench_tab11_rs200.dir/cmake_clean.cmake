file(REMOVE_RECURSE
  "CMakeFiles/bench_tab11_rs200.dir/bench_tab11_rs200.cc.o"
  "CMakeFiles/bench_tab11_rs200.dir/bench_tab11_rs200.cc.o.d"
  "bench_tab11_rs200"
  "bench_tab11_rs200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab11_rs200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
