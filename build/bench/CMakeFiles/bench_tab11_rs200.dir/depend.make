# Empty dependencies file for bench_tab11_rs200.
# This may be replaced when dependencies are built.
