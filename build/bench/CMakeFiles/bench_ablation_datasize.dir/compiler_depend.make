# Empty compiler generated dependencies file for bench_ablation_datasize.
# This may be replaced when dependencies are built.
