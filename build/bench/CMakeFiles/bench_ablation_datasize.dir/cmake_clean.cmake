file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_datasize.dir/bench_ablation_datasize.cc.o"
  "CMakeFiles/bench_ablation_datasize.dir/bench_ablation_datasize.cc.o.d"
  "bench_ablation_datasize"
  "bench_ablation_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
