
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_bandit_params.cc" "bench/CMakeFiles/bench_fig6_bandit_params.dir/bench_fig6_bandit_params.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_bandit_params.dir/bench_fig6_bandit_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automl/CMakeFiles/autofp_automl.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/autofp_search.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autofp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metafeatures/CMakeFiles/autofp_metafeatures.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autofp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/autofp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/autofp_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/autofp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autofp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
