file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bandit_params.dir/bench_fig6_bandit_params.cc.o"
  "CMakeFiles/bench_fig6_bandit_params.dir/bench_fig6_bandit_params.cc.o.d"
  "bench_fig6_bandit_params"
  "bench_fig6_bandit_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bandit_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
