# Empty dependencies file for bench_tab5_bottleneck.
# This may be replaced when dependencies are built.
