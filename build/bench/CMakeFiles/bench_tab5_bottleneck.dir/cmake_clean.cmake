file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_bottleneck.dir/bench_tab5_bottleneck.cc.o"
  "CMakeFiles/bench_tab5_bottleneck.dir/bench_tab5_bottleneck.cc.o.d"
  "bench_tab5_bottleneck"
  "bench_tab5_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
