file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_automl_default.dir/bench_fig10_automl_default.cc.o"
  "CMakeFiles/bench_fig10_automl_default.dir/bench_fig10_automl_default.cc.o.d"
  "bench_fig10_automl_default"
  "bench_fig10_automl_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_automl_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
