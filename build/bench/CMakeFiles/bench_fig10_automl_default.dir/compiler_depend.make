# Empty compiler generated dependencies file for bench_fig10_automl_default.
# This may be replaced when dependencies are built.
