# Empty dependencies file for bench_fig9_high_cardinality.
# This may be replaced when dependencies are built.
