# Empty compiler generated dependencies file for bench_fig11_automl_extended.
# This may be replaced when dependencies are built.
