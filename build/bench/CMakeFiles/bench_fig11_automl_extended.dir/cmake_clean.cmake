file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_automl_extended.dir/bench_fig11_automl_extended.cc.o"
  "CMakeFiles/bench_fig11_automl_extended.dir/bench_fig11_automl_extended.cc.o.d"
  "bench_fig11_automl_extended"
  "bench_fig11_automl_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_automl_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
