file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_ranking.dir/bench_tab4_ranking.cc.o"
  "CMakeFiles/bench_tab4_ranking.dir/bench_tab4_ranking.cc.o.d"
  "bench_tab4_ranking"
  "bench_tab4_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
