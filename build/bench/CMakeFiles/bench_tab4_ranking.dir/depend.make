# Empty dependencies file for bench_tab4_ranking.
# This may be replaced when dependencies are built.
