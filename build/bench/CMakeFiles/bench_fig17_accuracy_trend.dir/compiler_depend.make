# Empty compiler generated dependencies file for bench_fig17_accuracy_trend.
# This may be replaced when dependencies are built.
