file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_accuracy_trend.dir/bench_fig17_accuracy_trend.cc.o"
  "CMakeFiles/bench_fig17_accuracy_trend.dir/bench_fig17_accuracy_trend.cc.o.d"
  "bench_fig17_accuracy_trend"
  "bench_fig17_accuracy_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_accuracy_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
