# Empty compiler generated dependencies file for bench_fig8_low_cardinality.
# This may be replaced when dependencies are built.
