file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_low_cardinality.dir/bench_fig8_low_cardinality.cc.o"
  "CMakeFiles/bench_fig8_low_cardinality.dir/bench_fig8_low_cardinality.cc.o.d"
  "bench_fig8_low_cardinality"
  "bench_fig8_low_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_low_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
