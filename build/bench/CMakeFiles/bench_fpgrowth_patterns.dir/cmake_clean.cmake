file(REMOVE_RECURSE
  "CMakeFiles/bench_fpgrowth_patterns.dir/bench_fpgrowth_patterns.cc.o"
  "CMakeFiles/bench_fpgrowth_patterns.dir/bench_fpgrowth_patterns.cc.o.d"
  "bench_fpgrowth_patterns"
  "bench_fpgrowth_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpgrowth_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
