# Empty dependencies file for bench_fpgrowth_patterns.
# This may be replaced when dependencies are built.
