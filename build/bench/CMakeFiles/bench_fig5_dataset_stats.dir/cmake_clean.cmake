file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dataset_stats.dir/bench_fig5_dataset_stats.cc.o"
  "CMakeFiles/bench_fig5_dataset_stats.dir/bench_fig5_dataset_stats.cc.o.d"
  "bench_fig5_dataset_stats"
  "bench_fig5_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
