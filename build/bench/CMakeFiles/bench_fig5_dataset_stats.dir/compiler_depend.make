# Empty compiler generated dependencies file for bench_fig5_dataset_stats.
# This may be replaced when dependencies are built.
