# Empty compiler generated dependencies file for bench_tab2_tpot_vs_best.
# This may be replaced when dependencies are built.
