file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_tpot_vs_best.dir/bench_tab2_tpot_vs_best.cc.o"
  "CMakeFiles/bench_tab2_tpot_vs_best.dir/bench_tab2_tpot_vs_best.cc.o.d"
  "bench_tab2_tpot_vs_best"
  "bench_tab2_tpot_vs_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_tpot_vs_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
