file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_metarule.dir/bench_tab1_metarule.cc.o"
  "CMakeFiles/bench_tab1_metarule.dir/bench_tab1_metarule.cc.o.d"
  "bench_tab1_metarule"
  "bench_tab1_metarule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_metarule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
