# Empty compiler generated dependencies file for bench_micro_preprocessors.
# This may be replaced when dependencies are built.
