file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_preprocessors.dir/bench_micro_preprocessors.cc.o"
  "CMakeFiles/bench_micro_preprocessors.dir/bench_micro_preprocessors.cc.o.d"
  "bench_micro_preprocessors"
  "bench_micro_preprocessors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_preprocessors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
