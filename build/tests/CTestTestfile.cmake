# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_preprocessors[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_metafeatures[1]_include.cmake")
include("/root/repo/build/tests/test_search_space[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_ranking[1]_include.cmake")
include("/root/repo/build/tests/test_fp_growth[1]_include.cmake")
include("/root/repo/build/tests/test_extended_search[1]_include.cmake")
include("/root/repo/build/tests/test_automl[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_gbdt_details[1]_include.cmake")
include("/root/repo/build/tests/test_bandits[1]_include.cmake")
include("/root/repo/build/tests/test_surrogates[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_rigged_search[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_parse[1]_include.cmake")
include("/root/repo/build/tests/test_splits_stratified[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
