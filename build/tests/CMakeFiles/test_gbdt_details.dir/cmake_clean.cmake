file(REMOVE_RECURSE
  "CMakeFiles/test_gbdt_details.dir/test_gbdt_details.cc.o"
  "CMakeFiles/test_gbdt_details.dir/test_gbdt_details.cc.o.d"
  "test_gbdt_details"
  "test_gbdt_details.pdb"
  "test_gbdt_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gbdt_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
