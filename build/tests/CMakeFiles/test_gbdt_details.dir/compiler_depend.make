# Empty compiler generated dependencies file for test_gbdt_details.
# This may be replaced when dependencies are built.
