file(REMOVE_RECURSE
  "CMakeFiles/test_bandits.dir/test_bandits.cc.o"
  "CMakeFiles/test_bandits.dir/test_bandits.cc.o.d"
  "test_bandits"
  "test_bandits.pdb"
  "test_bandits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
