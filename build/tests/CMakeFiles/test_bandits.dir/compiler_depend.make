# Empty compiler generated dependencies file for test_bandits.
# This may be replaced when dependencies are built.
