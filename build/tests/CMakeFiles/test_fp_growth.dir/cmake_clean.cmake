file(REMOVE_RECURSE
  "CMakeFiles/test_fp_growth.dir/test_fp_growth.cc.o"
  "CMakeFiles/test_fp_growth.dir/test_fp_growth.cc.o.d"
  "test_fp_growth"
  "test_fp_growth.pdb"
  "test_fp_growth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fp_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
