file(REMOVE_RECURSE
  "CMakeFiles/test_metafeatures.dir/test_metafeatures.cc.o"
  "CMakeFiles/test_metafeatures.dir/test_metafeatures.cc.o.d"
  "test_metafeatures"
  "test_metafeatures.pdb"
  "test_metafeatures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metafeatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
