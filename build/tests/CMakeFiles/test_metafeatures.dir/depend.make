# Empty dependencies file for test_metafeatures.
# This may be replaced when dependencies are built.
