# Empty compiler generated dependencies file for test_pipeline_parse.
# This may be replaced when dependencies are built.
