file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_parse.dir/test_pipeline_parse.cc.o"
  "CMakeFiles/test_pipeline_parse.dir/test_pipeline_parse.cc.o.d"
  "test_pipeline_parse"
  "test_pipeline_parse.pdb"
  "test_pipeline_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
