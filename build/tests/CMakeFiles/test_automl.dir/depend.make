# Empty dependencies file for test_automl.
# This may be replaced when dependencies are built.
