file(REMOVE_RECURSE
  "CMakeFiles/test_automl.dir/test_automl.cc.o"
  "CMakeFiles/test_automl.dir/test_automl.cc.o.d"
  "test_automl"
  "test_automl.pdb"
  "test_automl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
