# Empty compiler generated dependencies file for test_splits_stratified.
# This may be replaced when dependencies are built.
