file(REMOVE_RECURSE
  "CMakeFiles/test_splits_stratified.dir/test_splits_stratified.cc.o"
  "CMakeFiles/test_splits_stratified.dir/test_splits_stratified.cc.o.d"
  "test_splits_stratified"
  "test_splits_stratified.pdb"
  "test_splits_stratified[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splits_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
