file(REMOVE_RECURSE
  "CMakeFiles/test_extended_search.dir/test_extended_search.cc.o"
  "CMakeFiles/test_extended_search.dir/test_extended_search.cc.o.d"
  "test_extended_search"
  "test_extended_search.pdb"
  "test_extended_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
