# Empty compiler generated dependencies file for test_extended_search.
# This may be replaced when dependencies are built.
