# Empty dependencies file for test_surrogates.
# This may be replaced when dependencies are built.
