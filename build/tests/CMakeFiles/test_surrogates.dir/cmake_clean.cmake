file(REMOVE_RECURSE
  "CMakeFiles/test_surrogates.dir/test_surrogates.cc.o"
  "CMakeFiles/test_surrogates.dir/test_surrogates.cc.o.d"
  "test_surrogates"
  "test_surrogates.pdb"
  "test_surrogates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surrogates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
