# Empty compiler generated dependencies file for test_rigged_search.
# This may be replaced when dependencies are built.
