file(REMOVE_RECURSE
  "CMakeFiles/test_rigged_search.dir/test_rigged_search.cc.o"
  "CMakeFiles/test_rigged_search.dir/test_rigged_search.cc.o.d"
  "test_rigged_search"
  "test_rigged_search.pdb"
  "test_rigged_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rigged_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
