# Empty compiler generated dependencies file for test_preprocessors.
# This may be replaced when dependencies are built.
