file(REMOVE_RECURSE
  "CMakeFiles/test_preprocessors.dir/test_preprocessors.cc.o"
  "CMakeFiles/test_preprocessors.dir/test_preprocessors.cc.o.d"
  "test_preprocessors"
  "test_preprocessors.pdb"
  "test_preprocessors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocessors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
