# Empty dependencies file for autofp.
# This may be replaced when dependencies are built.
