file(REMOVE_RECURSE
  "CMakeFiles/autofp.dir/autofp_cli.cc.o"
  "CMakeFiles/autofp.dir/autofp_cli.cc.o.d"
  "autofp"
  "autofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
