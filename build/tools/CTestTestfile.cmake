# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(autofp_cli_smoke "/root/repo/build/tools/autofp" "--data" "suite:blood_syn" "--budget" "20" "--algorithm" "RS")
set_tests_properties(autofp_cli_smoke PROPERTIES  LABELS "cli" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autofp_cli_list "/root/repo/build/tools/autofp" "--list")
set_tests_properties(autofp_cli_list PROPERTIES  LABELS "cli" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autofp_cli_two_step "/root/repo/build/tools/autofp" "--data" "suite:heart_syn" "--space" "low" "--two-step" "--budget" "20")
set_tests_properties(autofp_cli_two_step PROPERTIES  LABELS "cli" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autofp_cli_apply "/root/repo/build/tools/autofp" "--data" "suite:blood_syn" "--apply" "StandardScaler -> Binarizer(threshold=0.5)" "--out" "/root/repo/build/apply_out.csv")
set_tests_properties(autofp_cli_apply PROPERTIES  LABELS "cli" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
